"""Versioned delta arenas: live updates, MVCC snapshot isolation,
incremental index maintenance and the cache/CLI/server surface.

The contract under test (docs/updates.md): ``DocumentStore.update``
publishes a brand-new immutable version per delta, readers pin the
versions current when they start (threads and parallel worker
processes alike), indexes are maintained incrementally yet stay
byte-identical to scratch builds, and the session result cache evicts
*only* superseded versions.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, Delete, Insert, Replace
from repro.datagen import ITEMS_DTD, generate_items
from repro.engine.executor import execute
from repro.errors import (
    EvaluationError,
    FrozenDocumentError,
    UnknownDocumentError,
)
from repro.index.structural import PathIndex
from repro.index.value import ValueIndex
from repro.xmldb.delta import DeltaError, apply_delta
from repro.xmldb.node import NodeKind, element
from repro.xmldb.serialize import serialize

ENGINE_MODES = ("reference", "physical", "pipelined", "vectorized")

BIB = ("<bib>"
       "<book year='1994'><title>TCP/IP Illustrated</title></book>"
       "<book year='2000'><title>Data on the Web</title></book>"
       "</bib>")


def bib_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.register_text("bib.xml", BIB)
    return db


def doc_text(db: Database, name: str = "bib.xml") -> str:
    return serialize(db.store.get(name).root)


# ----------------------------------------------------------------------
# Delta semantics
# ----------------------------------------------------------------------
def test_insert_appends_and_bumps_version():
    db = bib_db()
    old = db.store.get("bib.xml")
    new = db.update("bib.xml",
                    Insert(old.root, 2,
                           element("book", element("title", "New"))))
    assert new.version == 1 and new.seq != old.seq
    assert db.store.get("bib.xml") is new
    assert doc_text(db).endswith(
        "<book><title>New</title></book></bib>")


def test_insert_at_index_places_subtree():
    db = bib_db()
    root = db.store.get("bib.xml").root
    db.update("bib.xml",
              Insert(root, 0, element("book", element("title", "First"))))
    assert doc_text(db).startswith(
        "<bib><book><title>First</title></book>")


def test_delete_removes_subtree():
    db = bib_db()
    first_book = db.store.get("bib.xml").root.children[0]
    db.update("bib.xml", Delete(first_book))
    assert doc_text(db) == ("<bib><book year=\"2000\">"
                            "<title>Data on the Web</title>"
                            "</book></bib>")


def test_replace_swaps_subtree():
    db = bib_db()
    first_book = db.store.get("bib.xml").root.children[0]
    db.update("bib.xml",
              Replace(first_book, element("note", "gone")))
    text = doc_text(db)
    assert "<note>gone</note>" in text
    assert "TCP/IP" not in text


def test_multi_op_update_is_one_version():
    db = bib_db()
    old = db.store.get("bib.xml")
    new = db.update("bib.xml", [
        Insert(old.root, 2, element("book", element("title", "New"))),
        # intermediate coordinates: pre 1 is still the first book
        Delete(1),
    ])
    assert new.version == 1, "one update call = one published version"
    text = doc_text(db)
    assert "TCP/IP" not in text and "New" in text
    assert new.delta_counts == {"insert": 1, "delete": 1, "replace": 0}


def test_old_version_is_untouched():
    db = bib_db()
    old = db.store.get("bib.xml")
    before = serialize(old.root)
    rows_before = len(old.arena.kinds)
    db.update("bib.xml", Delete(old.root.children[0]))
    assert serialize(old.root) == before
    assert len(old.arena.kinds) == rows_before
    assert old.version == 0


def test_interval_invariants_hold_after_update():
    db = bib_db()
    root = db.store.get("bib.xml").root
    db.update("bib.xml",
              Insert(root, 1, element("book", element("title", "Mid"),
                                      year="2024")))
    arena = db.store.get("bib.xml").arena
    n = len(arena.kinds)
    for pre in range(n):
        end = arena.ends[pre]
        assert pre < end <= n
        parent = arena.parents[pre]
        if pre:
            assert parent < pre < arena.ends[parent], \
                "child interval must nest inside its parent's"
    # posts must order anti-symmetrically to pres within ancestry
    for pre in range(1, n):
        parent = arena.parents[pre]
        assert arena.posts[parent] > arena.posts[pre]


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_delete_root_rejected():
    db = bib_db()
    with pytest.raises(DeltaError):
        db.update("bib.xml", Delete(0))


def test_attribute_rows_rejected():
    db = bib_db()
    arena = db.store.get("bib.xml").arena
    attr_pre = next(p for p, k in enumerate(arena.kinds)
                    if k is NodeKind.ATTRIBUTE)
    with pytest.raises(DeltaError):
        db.update("bib.xml", Delete(attr_pre))
    with pytest.raises(DeltaError):
        db.update("bib.xml", Replace(attr_pre, element("x")))


def test_insert_index_out_of_range_rejected():
    db = bib_db()
    root = db.store.get("bib.xml").root
    with pytest.raises(DeltaError):
        db.update("bib.xml", Insert(root, 7, element("x")))


def test_frozen_tree_rejected_as_patch():
    db = bib_db()
    frozen = db.store.get("bib.xml").root.children[0]
    with pytest.raises(DeltaError):
        db.update("bib.xml", Insert(db.store.get("bib.xml").root, 0,
                                    frozen))


def test_unknown_document_rejected():
    db = bib_db()
    with pytest.raises(UnknownDocumentError):
        db.update("nope.xml", Delete(1))


def test_later_ops_must_use_integer_pres():
    db = bib_db()
    root = db.store.get("bib.xml").root
    with pytest.raises(DeltaError):
        db.update("bib.xml", [Delete(root.children[0]),
                              Delete(root.children[1])])


def test_frozen_document_error_points_at_update():
    db = bib_db()
    with pytest.raises(FrozenDocumentError,
                       match="DocumentStore.update"):
        db.store.get("bib.xml").root.append_child(element("x"))


# ----------------------------------------------------------------------
# Version chain and compaction
# ----------------------------------------------------------------------
def test_version_chain_stats_and_compaction():
    db = Database(compact_every=3)
    db.register_text("bib.xml", BIB)
    root_pre = 0
    for k in range(2):
        db.update("bib.xml",
                  Insert(root_pre, 0,
                         element("book", element("title", f"v{k}"))))
    stats = db.store.get("bib.xml").version_stats()
    assert stats["version"] == 2
    assert stats["chain_length"] == 2
    assert stats["compaction_watermark"] == 0
    assert stats["delta_counts"]["insert"] == 2
    assert [entry["version"] for entry in stats["delta_chain"]] == [1, 2]
    # third update folds the chain
    db.update("bib.xml",
              Insert(root_pre, 0,
                     element("book", element("title", "v2"))))
    stats = db.store.get("bib.xml").version_stats()
    assert stats["version"] == 3
    assert stats["chain_length"] == 0
    assert stats["compaction_watermark"] == 3
    assert stats["base_rows"] == stats["rows"]
    # cumulative op counts survive compaction
    assert stats["delta_counts"]["insert"] == 3


def test_insert_resolves_parent_by_pre_id():
    db = bib_db()
    db.update("bib.xml", Insert(0, 0, element("marker")))
    assert doc_text(db).startswith("<bib><marker/>")


# ----------------------------------------------------------------------
# Snapshot isolation
# ----------------------------------------------------------------------
PAIR = "<pair><a>0</a><b>0</b></pair>"
PAIR_QUERY = ('let $d := doc("pair.xml") '
              'return <r>{ $d/pair/a }{ $d/pair/b }</r>')


def _pair_update(db: Database, k: int) -> None:
    """Replace both correlated values in ONE atomic update.  Rows:
    0=pair 1=a 2=text 3=b 4=text; the first replace swaps rows [1, 3)
    for an equal-sized subtree, so b stays at pre 3."""
    db.update("pair.xml", [Replace(1, element("a", str(k))),
                           Replace(3, element("b", str(k)))])


def test_snapshot_isolation_under_concurrent_threads():
    db = Database()
    db.register_text("pair.xml", PAIR)
    session = db.session()
    prepared = session.prepare(PAIR_QUERY)
    stop = threading.Event()
    torn: list[str] = []

    def writer() -> None:
        k = 1
        while not stop.is_set():
            _pair_update(db, k)
            k += 1

    def reader() -> None:
        for _ in range(200):
            out = prepared.execute(use_result_cache=False).output
            a = out.split("<a>")[1].split("</a>")[0]
            b = out.split("<b>")[1].split("</b>")[0]
            if a != b:
                torn.append(out)
                break

    writers = [threading.Thread(target=writer) for _ in range(2)]
    readers = [threading.Thread(target=reader) for _ in range(2)]
    for thread in writers + readers:
        thread.start()
    for thread in readers:
        thread.join()
    stop.set()
    for thread in writers:
        thread.join()
    session.close()
    assert not torn, f"reader observed a torn update: {torn[0]}"


def test_explicit_snapshot_pins_old_version():
    db = bib_db()
    session = db.session()
    snap = db.snapshot()
    db.update("bib.xml", Delete(db.store.get("bib.xml").root.children[0]))
    query = 'for $t in doc("bib.xml")//title return $t'
    old = session.execute(query, snapshot=snap)
    assert "TCP/IP" in old.output, \
        "old-snapshot execution must read the pre-update version"
    new = session.execute(query)
    assert "TCP/IP" not in new.output
    session.close()


def test_parallel_workers_execute_pinned_snapshot():
    """A pinned snapshot must reach worker processes: parallel
    execution against an old StoreSnapshot re-exports the superseded
    version and returns pre-update rows."""
    from repro.api import compile_query

    db = Database()
    db.register_tree("items.xml", generate_items(400, seed=3),
                     dtd_text=ITEMS_DTD)
    plan = compile_query(
        'let $d := doc("items.xml") '
        'for $i in $d//itemtuple return $i/itemno', db).best().plan
    snap = db.snapshot()
    before = execute(plan, snap, mode="physical").output
    # replace every itemtuple's itemno in a few sweeps of updates
    doc = db.store.get("items.xml")
    for k in range(3):
        target = db.store.get("items.xml").arena.tag_rows("itemtuple")[k]
        db.update("items.xml",
                  Replace(target, element("itemtuple",
                                          element("itemno", "CHANGED"),
                                          element("description", "x"),
                                          element("offered_by", "u0"))))
    try:
        pinned = execute(plan, snap, mode="parallel", workers=2)
        assert pinned.output == before
        assert "CHANGED" not in pinned.output
        current = execute(plan, db.store, mode="parallel", workers=2)
        assert current.output.count("CHANGED") == 3
        assert current.output == execute(plan, db.store,
                                         mode="physical").output
    finally:
        db.close()
    assert serialize(doc.root) == serialize(snap.get("items.xml").root)


def test_parallel_reads_race_atomic_multi_op_updates():
    """Workers must never see half an update: every itemno is rewritten
    to the same generation tag in one multi-op update, so any snapshot
    a parallel query pins is uniform."""
    from repro.api import compile_query

    db = Database()
    db.register_tree("flat.xml", generate_items(60, seed=11),
                     dtd_text=ITEMS_DTD)
    plan = compile_query(
        'let $d := doc("flat.xml") '
        'for $i in $d//itemtuple return $i/itemno', db).best().plan

    def rewrite_all(k: int) -> None:
        arena = db.store.get("flat.xml").arena
        # replace back-to-front: every patch has the same row count as
        # the window it replaces, and the windows are disjoint, so each
        # recorded pre id stays valid in the intermediate coordinates
        db.update("flat.xml",
                  [Replace(pre, element("itemno", f"gen-{k}"))
                   for pre in reversed(arena.tag_rows("itemno"))])

    stop = threading.Event()
    mixed: list[set] = []

    def writer() -> None:
        k = 1
        while not stop.is_set():
            rewrite_all(k)
            k += 1

    def reader() -> None:
        for _ in range(25):
            out = execute(plan, db.store, mode="parallel",
                          workers=2).output
            gens = {part.split("</itemno>")[0]
                    for part in out.split("<itemno>")[1:]}
            if len(gens) > 1:
                mixed.append(gens)
                break

    rewrite_all(0)
    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    reader_thread.join()
    stop.set()
    writer_thread.join()
    db.close()
    assert not mixed, f"parallel reader saw a torn update: {mixed[0]}"


# ----------------------------------------------------------------------
# Session caches
# ----------------------------------------------------------------------
def test_result_cache_evicts_only_superseded_versions():
    db = Database()
    db.register_text("a.xml", "<a><x>1</x></a>")
    db.register_text("b.xml", "<b><y>2</y></b>")
    session = db.session()
    query_a = 'for $x in doc("a.xml")//x return $x'
    query_b = 'for $y in doc("b.xml")//y return $y'
    session.execute(query_a)
    session.execute(query_b)
    hits_before = session.cache_stats()["result_cache"]["hits"]
    db.update("b.xml", Insert(0, 1, element("y", "3")))
    # a.xml's entry survived the update to b.xml
    session.execute(query_a)
    assert session.cache_stats()["result_cache"]["hits"] == \
        hits_before + 1
    # b.xml's superseded entry is gone: fresh execution, new rows
    result = session.execute(query_b)
    assert session.cache_stats()["result_cache"]["hits"] == \
        hits_before + 1
    assert "<y>3</y>" in result.output
    session.close()


def test_in_flight_old_snapshot_query_completes_after_eviction():
    """Regression test for version-aware eviction: a query that pinned
    a snapshot *before* an update must complete correctly after the
    update evicted that version's cache entries — and must neither
    serve nor clobber the new version's entries."""
    db = bib_db()
    session = db.session()
    query = 'for $t in doc("bib.xml")//title return $t'
    snap = db.snapshot()
    session.execute(query)  # populates the v0 entry
    db.update("bib.xml",
              Replace(db.store.get("bib.xml").root.children[0],
                      element("book", element("title", "Fresh"))))
    old = session.execute(query, snapshot=snap)
    assert "TCP/IP" in old.output and "Fresh" not in old.output
    new = session.execute(query)
    assert "Fresh" in new.output and "TCP/IP" not in new.output
    # the old-snapshot run must not have poisoned the current entry
    again = session.execute(query)
    assert again.output == new.output
    session.close()


def test_update_event_notifies_listeners():
    db = bib_db()
    events = []
    db.store.add_listener(lambda event, name: events.append((event,
                                                             name)))
    db.update("bib.xml", Insert(0, 0, element("marker")))
    assert ("update", "bib.xml") in events


# ----------------------------------------------------------------------
# Incremental index maintenance
# ----------------------------------------------------------------------
def assert_indexes_match_scratch(db: Database, name: str) -> None:
    document = db.store.get(name)
    inc = db.store.indexes.for_version(document)
    scratch_path = PathIndex(document.root, document.arena)
    scratch_value = ValueIndex(document.root, document.arena)
    assert sorted(inc.path.paths()) == sorted(scratch_path.paths())
    for path in scratch_path.paths():
        assert inc.path.rows_at(path) == scratch_path.rows_at(path)
    assert sorted(inc.value.paths()) == sorted(scratch_value.paths())
    for path in scratch_value.paths():
        a = inc.value._values[path]
        b = scratch_value._values[path]
        assert a.all_keys == b.all_keys and a.all_pres == b.all_pres
        assert a.num_keys == b.num_keys and a.num_pres == b.num_pres
        assert a.text_keys == b.text_keys and a.text_pres == b.text_pres
        assert {k: sorted(v) for k, v in a.by_key.items()} == \
               {k: sorted(v) for k, v in b.by_key.items()}


def test_incremental_indexes_match_scratch_builds():
    db = Database(index_mode="eager")
    db.register_tree("items.xml", generate_items(120, seed=7),
                     dtd_text=ITEMS_DTD)
    rows = db.store.get("items.xml").arena.tag_rows("itemtuple")
    db.update("items.xml",
              Replace(rows[2], element("itemtuple",
                                       element("itemno", "X1"),
                                       element("description", "d"),
                                       element("offered_by", "u1"),
                                       element("reserveprice", "808"))))
    db.update("items.xml",
              Delete(db.store.get("items.xml")
                     .arena.tag_rows("itemtuple")[4]))
    db.update("items.xml",
              Insert(0, 0, element("itemtuple",
                                   element("itemno", "X2"),
                                   element("description", "d2"),
                                   element("offered_by", "u2"))))
    assert db.store.indexes.incremental_applies == 3
    assert db.store.indexes.full_builds == 1
    assert_indexes_match_scratch(db, "items.xml")


def test_index_probe_reflects_update():
    db = Database(index_mode="eager")
    db.register_tree("items.xml", generate_items(100, seed=7),
                     dtd_text=ITEMS_DTD)
    from repro.api import compile_query
    query = ('let $d := doc("items.xml") '
             'for $i in $d//itemtuple '
             'where $i/reserveprice = 12345 return $i/itemno')
    plan = compile_query(query, db).best().plan
    assert db.execute(plan).rows == []
    target = db.store.get("items.xml").arena.tag_rows("itemtuple")[0]
    db.update("items.xml",
              Replace(target, element("itemtuple",
                                      element("itemno", "HIT"),
                                      element("description", "d"),
                                      element("offered_by", "u"),
                                      element("reserveprice", "12345"))))
    plan_after = compile_query(query, db).best().plan
    result = db.execute(plan_after)
    assert "HIT" in result.output


def test_insert_under_atomic_element_deindexes_path():
    """An insert that gives a previously atomic element an element
    child must flip the path non-atomic — exactly as a scratch build
    would see it."""
    db = Database(index_mode="eager")
    db.register_text("d.xml", "<d><v>1</v><v>2</v></d>")
    # give the first <v> an element child
    arena = db.store.get("d.xml").arena
    v_pre = arena.tag_rows("v")[0]
    db.update("d.xml", Insert(v_pre, 1, element("sub", "x")))
    assert_indexes_match_scratch(db, "d.xml")


def test_lazy_mode_builds_on_demand_per_version():
    db = Database(index_mode="lazy")
    db.register_text("d.xml", "<d><v>1</v></d>")
    db.update("d.xml", Insert(0, 1, element("v", "2")))
    # no index existed pre-update, so nothing incremental: the build
    # happens on first use, for the current version
    assert db.store.indexes.incremental_applies == 0
    assert_indexes_match_scratch(db, "d.xml")


# ----------------------------------------------------------------------
# Property-based differential: random delta sequences == re-parse
# ----------------------------------------------------------------------
def _fragment(rng_label: int):
    return element("extra",
                   element("tag", f"t{rng_label}"),
                   element("val", str(rng_label % 97)))


def _row_names(arena) -> list:
    return [None if arena.name_ids[pre] < 0
            else arena.names[arena.name_ids[pre]]
            for pre in range(len(arena.kinds))]


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_random_delta_sequences_match_reparse(data):
    db = Database()
    db.register_text(
        "d.xml",
        "<items>" + "".join(
            f"<itemtuple><itemno>i{k}</itemno>"
            f"<reserveprice>{100 + k}</reserveprice></itemtuple>"
            for k in range(6)) + "</items>")
    n_ops = data.draw(st.integers(min_value=1, max_value=6),
                      label="n_ops")
    for step in range(n_ops):
        arena = db.store.get("d.xml").arena
        element_pres = [pre for pre, kind in enumerate(arena.kinds)
                        if kind is NodeKind.ELEMENT]
        kind = data.draw(st.sampled_from(("insert", "delete",
                                          "replace")),
                         label=f"op_{step}")
        label = data.draw(st.integers(min_value=0, max_value=999),
                          label=f"label_{step}")
        if kind == "insert":
            parent = data.draw(st.sampled_from(element_pres),
                               label=f"parent_{step}")
            child_count = sum(
                1 for c in arena.child_lists[parent]
                if c.kind in (NodeKind.ELEMENT, NodeKind.TEXT))
            index = data.draw(st.integers(min_value=0,
                                          max_value=child_count),
                              label=f"index_{step}")
            db.update("d.xml", Insert(parent, index, _fragment(label)))
            continue
        targets = [pre for pre in element_pres if pre > 0]
        if not targets:
            continue
        target = data.draw(st.sampled_from(targets),
                           label=f"target_{step}")
        if kind == "delete":
            db.update("d.xml", Delete(target))
        else:
            db.update("d.xml", Replace(target, _fragment(label)))

    updated = db.store.get("d.xml")
    text = serialize(updated.root)
    scratch = Database()
    scratch.register_text("d.xml", text)
    reparsed = scratch.store.get("d.xml")

    # byte-identical serialization after a re-parse round trip
    assert serialize(reparsed.root) == text
    # column-exact arena equality (names resolved through each arena's
    # own dictionary — interning order may differ)
    a, b = updated.arena, reparsed.arena
    assert a.kinds == b.kinds
    assert _row_names(a) == _row_names(b)
    assert a.texts == b.texts
    assert a.posts == b.posts
    assert a.levels == b.levels
    assert a.parents == b.parents
    assert a.ends == b.ends
    # and all four engines agree between the two databases
    from repro.api import compile_query
    query = ('let $d := doc("d.xml") '
             'return <out>{ $d//itemno }{ $d//tag }</out>')
    expected = None
    for mode in ENGINE_MODES:
        live = db.execute(compile_query(query, db).best().plan,
                          mode=mode)
        fresh = scratch.execute(
            compile_query(query, scratch).best().plan, mode=mode)
        assert live.output == fresh.output
        if expected is None:
            expected = live.output
        assert live.output == expected


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_random_deltas_keep_incremental_indexes_exact(data):
    db = Database(index_mode="eager")
    db.register_text(
        "d.xml",
        "<items>" + "".join(
            f"<itemtuple><itemno>i{k}</itemno>"
            f"<reserveprice>{100 + k}</reserveprice></itemtuple>"
            for k in range(5)) + "</items>")
    for step in range(data.draw(st.integers(min_value=1, max_value=5),
                                label="n_ops")):
        arena = db.store.get("d.xml").arena
        element_pres = [pre for pre, kind in enumerate(arena.kinds)
                        if kind is NodeKind.ELEMENT and pre > 0]
        if not element_pres:
            break
        kind = data.draw(st.sampled_from(("insert", "delete",
                                          "replace")),
                         label=f"op_{step}")
        label = data.draw(st.integers(min_value=0, max_value=999),
                          label=f"label_{step}")
        target = data.draw(st.sampled_from(element_pres),
                           label=f"target_{step}")
        if kind == "insert":
            db.update("d.xml", Insert(arena.parents[target], 0,
                                      _fragment(label)))
        elif kind == "delete":
            db.update("d.xml", Delete(target))
        else:
            db.update("d.xml", Replace(target, _fragment(label)))
    assert_indexes_match_scratch(db, "d.xml")


# ----------------------------------------------------------------------
# apply_delta (engine-independent splice layer)
# ----------------------------------------------------------------------
def test_apply_delta_returns_records():
    db = bib_db()
    document = db.store.get("bib.xml")
    arena, records = apply_delta(document,
                                 [Delete(document.root.children[0])])
    assert len(records) == 1
    assert records[0].kind == "delete"
    assert records[0].removed > 0 and records[0].inserted == 0
    # the source document is untouched: apply_delta is pure
    assert db.store.get("bib.xml") is document
    assert document.version == 0


# ----------------------------------------------------------------------
# CLI and server surface
# ----------------------------------------------------------------------
def test_cli_stats_prints_version_chain(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "bib.xml"
    path.write_text(BIB)
    assert main(["stats", "bib.xml", "--doc",
                 f"bib.xml={path}"]) == 0
    out = capsys.readouterr().out
    assert "version chain:" in out
    assert "compaction watermark" in out
    assert "delta ops" in out


class _ServerHandle:
    """A QueryServer on its own event-loop thread (port 0)."""

    def __init__(self):
        self.db = Database(index_mode="lazy")
        self.db.register_text("bib.xml", BIB)
        self.session = self.db.session()
        from repro.server.app import QueryServer, ServerConfig
        self.server = QueryServer(self.session, ServerConfig(port=0))
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        async def run() -> None:
            await self.server.start()
            ready.set()
            await self.server.serve_forever()

        def runner() -> None:
            try:
                self.loop.run_until_complete(run())
            except asyncio.CancelledError:
                pass

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        assert ready.wait(10), "server did not start"
        host, port = self.server.address
        self.base = f"http://{host}:{port}"

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(
            lambda: [task.cancel()
                     for task in asyncio.all_tasks(self.loop)])
        self.thread.join(timeout=5)
        self.session.close()

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.base + path,
                                        timeout=10) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def post(self, path: str, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST")
        try:
            with urllib.request.urlopen(request, timeout=10) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def update_server():
    handle = _ServerHandle()
    yield handle
    handle.stop()


def test_server_update_endpoint(update_server):
    query = {"query": 'for $t in doc("bib.xml")//title return $t'}
    status, before = update_server.post("/query", query)
    assert status == 200 and "TCP/IP" in before["output"]
    status, reply = update_server.post("/update", {
        "document": "bib.xml",
        "ops": [{"op": "insert", "parent": 0, "index": 2,
                 "xml": "<book><title>Streamed In</title></book>"}],
    })
    assert status == 200
    assert reply["version"] == 1 and reply["applied"] == 1
    assert reply["delta_counts"]["insert"] == 1
    status, after = update_server.post("/query", query)
    assert status == 200 and "Streamed In" in after["output"]


def test_server_update_validation(update_server):
    status, reply = update_server.post("/update", {
        "document": "bib.xml",
        "ops": [{"op": "delete", "target": 0}],
    })
    assert status == 400 and reply["kind"] == "bad-update"
    status, reply = update_server.post("/update", {
        "document": "nope.xml",
        "ops": [{"op": "delete", "target": 1}],
    })
    assert status == 404 and reply["kind"] == "bad-document"
    status, reply = update_server.post("/update", {
        "document": "bib.xml",
        "ops": [{"op": "teleport", "target": 1}],
    })
    assert status == 400 and reply["kind"] == "bad-update"
    status, reply = update_server.post("/update", {
        "document": "bib.xml",
        "ops": [{"op": "insert", "parent": 0, "index": 0,
                 "xml": "<broken>"}],
    })
    assert status == 400 and reply["kind"] == "bad-update"


def test_server_stats_reports_versions(update_server):
    status, stats = update_server.get("/stats")
    assert status == 200
    info = stats["documents"]["bib.xml"]
    current = update_server.db.store.get("bib.xml")
    assert info["seq"] == current.seq
    assert info["version"] == current.version
    assert info["rows"] == len(current.arena.kinds)
    assert "live_snapshots" in stats
    assert stats["server"]["updates_total"] >= 1
    assert stats["server"]["update_errors_total"] >= 1


def test_store_snapshot_api():
    db = bib_db()
    snap = db.snapshot()
    assert "bib.xml" in snap
    assert snap.names() == ["bib.xml"]
    assert db.store.live_snapshot_count() >= 1
    versions = snap.versions()
    assert versions["bib.xml"] == db.store.get("bib.xml").seq
    assert snap.snapshot() is snap
