"""The interval-encoded arena document store: column invariants,
O(1) containment, freeze semantics, accelerated-axis equivalence, and
the deterministic multi-document order behind the evaluator's dedup."""

from __future__ import annotations

import pytest

from repro.datagen import BIB_DTD, generate_bib
from repro.errors import FrozenDocumentError
from repro.xmldb.arena import Arena, acceleration, arena_for
from repro.xmldb.document import DocumentStore
from repro.xmldb.node import Node, NodeKind, element, global_order_key
from repro.xpath.evaluator import _document_order_dedup, evaluate_path
from repro.xpath.parser import parse_path

DOC = """
<bib>
  <book year="1994"><title>A</title><author><last>L1</last></author></book>
  <book year="2000"><title>B</title>
    <author><last>L2</last></author>
    <author><last>L1</last></author>
  </book>
  <book year="1990"><title>C</title><editor><last>L3</last></editor></book>
</bib>
"""


@pytest.fixture
def store():
    s = DocumentStore()
    s.register_text("bib.xml", DOC)
    return s


@pytest.fixture
def arena(store):
    return store.get("bib.xml").arena


# ----------------------------------------------------------------------
# Column invariants
# ----------------------------------------------------------------------
def test_pre_numbering_matches_order_keys(arena):
    for pre, node in enumerate(arena.nodes):
        assert node.pre == pre
        assert node.order_key == pre
        assert node.arena is arena


def test_parent_levels_and_intervals(arena):
    for pre in range(len(arena)):
        parent = arena.parents[pre]
        if parent < 0:
            assert pre == 0
            assert arena.levels[pre] == 0
            continue
        # containment: a child row lies inside its parent's interval
        assert parent < pre < arena.ends[parent]
        assert arena.levels[pre] == arena.levels[parent] + 1
        # post-order: a node closes before its ancestors
        assert arena.posts[pre] < arena.posts[parent]


def test_interval_containment_equals_ancestry(arena):
    def ancestors(pre):
        while arena.parents[pre] >= 0:
            pre = arena.parents[pre]
            yield pre

    for d in range(len(arena)):
        ancestor_set = set(ancestors(d))
        for a in range(len(arena)):
            assert arena.is_ancestor(a, d) == (a in ancestor_set), (a, d)


def test_name_interning_and_tag_rows(arena):
    assert arena.tag_count("book") == 3
    assert arena.tag_count("author") == 3
    assert arena.tag_count("nope") == 0
    # per-tag row lists are in document (pre) order
    rows = arena.tag_rows("author")
    assert rows == sorted(rows)
    # interned ids round-trip through the names table
    for pre in rows:
        assert arena.names[arena.name_ids[pre]] == "author"


def test_string_value_reads_text_columns(arena):
    root = arena.nodes[0]
    books = root.child_elements("book")
    assert books[0].string_value().replace("\n", "").strip() \
        .startswith("A")
    title = books[1].child_elements("title")[0]
    assert title.string_value() == "B"
    year = books[0].attribute("year")
    assert year.string_value() == "1994"


def test_frozen_handles_report_document(store, arena):
    document = store.get("bib.xml")
    for node in arena.nodes:
        assert node.document is document


# ----------------------------------------------------------------------
# Freeze semantics (the string-value staleness fix)
# ----------------------------------------------------------------------
def test_mutation_after_registration_raises(store):
    root = store.get("bib.xml").root
    with pytest.raises(FrozenDocumentError, match="finalized"):
        root.append_child(element("book"))
    book = root.child_elements("book")[0]
    with pytest.raises(FrozenDocumentError):
        book.set_attribute("lang", "en")


def test_string_value_cache_cannot_go_stale(store):
    """The historical bug: mutate after the cache filled and the cache
    served stale text.  Freezing makes the mutation itself impossible,
    so the cached value is trustworthy forever."""
    root = store.get("bib.xml").root
    book = root.child_elements("book")[0]
    before = book.string_value()
    with pytest.raises(FrozenDocumentError):
        book.append_child(Node(NodeKind.TEXT, text="STALE"))
    assert book.string_value() == before
    assert "STALE" not in root.string_value()


def test_builder_trees_stay_mutable():
    root = element("r", element("a", "1"))
    assert root.string_value() == "1"
    root.append_child(element("b", "2"))  # no document, no freeze
    assert [c.name for c in root.child_elements()] == ["a", "b"]


def test_freeze_discards_builder_mode_string_value_cache():
    """A value cached while the tree was still mutable may predate
    later builder-mode edits; finalization must recompute from the
    columns, or indexes (keyed by arena string values) and scans
    (keyed by node.string_value()) would disagree."""
    root = element("r", "hello")
    assert root.string_value() == "hello"      # fills the cache
    root.append_child(Node(NodeKind.TEXT, text=" world"))
    store = DocumentStore()
    store.register_tree("t.xml", root)
    assert root.string_value() == "hello world"
    assert root.string_value() == root.arena.string_value(0)


def test_frozen_child_lists_are_immutable(store):
    """append_child raises — and so must direct list mutation, or the
    child lists would silently desynchronize from the interval
    columns."""
    root = store.get("bib.xml").root
    with pytest.raises(AttributeError):
        root.children.append(element("book"))
    with pytest.raises(AttributeError):
        root.child_elements("book")[0].attributes.append(
            Node(NodeKind.ATTRIBUTE, name="x", text="1"))


# ----------------------------------------------------------------------
# Accelerated axes ≡ pointer walks
# ----------------------------------------------------------------------
PATHS = ("//book", "//author", "//last", "book/title", "//book/@year",
         "//title/text()", "book/*", "//book[author]",
         "//book[@year > 1993]", "//missing")


@pytest.mark.parametrize("path_text", PATHS)
def test_acceleration_is_invisible(store, path_text):
    root = store.get("bib.xml").root
    path = parse_path(path_text)
    with acceleration(True):
        fast = evaluate_path(root, path)
    with acceleration(False):
        slow = evaluate_path(root, path)
    assert fast == slow  # identical handles, identical order


def test_acceleration_equivalence_generated_doc():
    store = DocumentStore()
    store.register_tree("bib.xml", generate_bib(25, 3, seed=11))
    root = store.get("bib.xml").root
    for path_text in ("//author", "//book/title", "//last"):
        path = parse_path(path_text)
        with acceleration(True):
            fast = evaluate_path(root, path)
        with acceleration(False):
            slow = evaluate_path(root, path)
        assert fast == slow and len(fast) > 0


def test_iter_descendants_same_in_both_modes(arena):
    root = arena.nodes[0]
    with acceleration(True):
        fast = list(root.iter_descendants(include_self=True))
    with acceleration(False):
        slow = list(root.iter_descendants(include_self=True))
    assert fast == slow
    assert all(n.kind is not NodeKind.ATTRIBUTE for n in fast)


def test_descendant_range_touches_only_results(store):
    """The encoding's point: a //tag step charges |result| visits, not
    the document size."""
    from repro.xmldb.document import ScanStats
    root = store.get("bib.xml").root
    stats = ScanStats()
    result = evaluate_path(root, parse_path("//author"), stats=stats)
    assert stats.node_visits == len(result) == 3
    assert stats.document_scans == {"bib.xml": 1}


# ----------------------------------------------------------------------
# Arena statistics
# ----------------------------------------------------------------------
def test_arena_stats_summary(arena):
    stats = arena.stats()
    assert stats["kinds"]["element"] == arena.element_count
    assert stats["kinds"]["attribute"] == 3
    assert stats["tag_counts"]["book"] == 3
    assert stats["depth_histogram"][0] == 1          # the root
    assert stats["max_depth"] == 3                   # bib/book/author/last
    assert stats["rows"] == len(arena)


def test_arena_for_loose_tree_does_not_freeze():
    root = element("r", element("v", "1"), element("v", "2"))
    arena = arena_for(root)
    assert arena.document is None
    assert root.arena is None                        # still a builder
    assert arena.tag_count("v") == 2
    root.append_child(element("v", "3"))             # still mutable


def test_arena_for_frozen_subtree_scopes_to_the_subtree():
    """An index built over a frozen non-root node must cover only that
    subtree — aliasing the whole-document arena would silently widen
    lookup results to the entire document."""
    from repro.index import ElementIndex, PathIndex
    store = DocumentStore()
    store.register_text(
        "s.xml", "<r><a><x>1</x></a><b><x>2</x><x>3</x></b></r>")
    root = store.get("s.xml").root
    branch_a, branch_b = root.child_elements()
    sub = arena_for(branch_a)
    assert sub is not root.arena and sub.document is None
    assert sub.nodes[0] is branch_a                  # row 0 = given root
    assert sub.tag_count("x") == 1
    assert len(ElementIndex(branch_b).lookup("x")) == 2
    assert PathIndex(branch_a).paths() == [("a",), ("a", "x")]


# ----------------------------------------------------------------------
# Deterministic multi-document order (the dedup fix)
# ----------------------------------------------------------------------
def test_dedup_orders_by_registration_sequence():
    store = DocumentStore()
    store.register_text("z.xml", "<z><v>1</v></z>")
    store.register_text("a.xml", "<a><v>2</v></a>")
    z_nodes = evaluate_path(store.get("z.xml").root, parse_path("//v"))
    a_nodes = evaluate_path(store.get("a.xml").root, parse_path("//v"))
    mixed = a_nodes + z_nodes + a_nodes
    ordered = _document_order_dedup(mixed)
    # registration order (z before a), not name or id() order
    assert [n.string_value() for n in ordered] == ["1", "2"]
    assert ordered == _document_order_dedup(list(reversed(mixed)))


def test_global_order_key_is_stable():
    store = DocumentStore()
    d1 = store.register_text("one.xml", "<r><v>x</v></r>")
    d2 = store.register_text("two.xml", "<r><v>y</v></r>")
    assert d1.seq < d2.seq
    k1 = global_order_key(d1.root)
    k2 = global_order_key(d2.root)
    assert k1 < k2
    loose = element("r")
    assert global_order_key(loose) < k1  # unregistered sorts first


def test_multi_document_query_order_is_deterministic():
    """End-to-end regression: a sequence drawing from two documents
    dedups into the same order on every evaluation."""
    store = DocumentStore()
    store.register_text("b.xml", "<bib><t>B1</t><t>B2</t></bib>")
    store.register_text("r.xml", "<rev><t>R1</t></rev>")
    roots = [store.get("r.xml").root, store.get("b.xml").root]
    runs = [evaluate_path(roots, parse_path("//t")) for _ in range(5)]
    texts = [[n.string_value() for n in run] for run in runs]
    assert texts == [["B1", "B2", "R1"]] * 5
