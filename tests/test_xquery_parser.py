"""XQuery parser unit tests."""

import pytest

from repro.errors import XQueryParseError
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


def test_let_for_return():
    q = parse_xquery('let $d := doc("b.xml") for $x in $d//a return $x')
    assert isinstance(q, ast.FLWR)
    assert isinstance(q.clauses[0], ast.LetClause)
    assert isinstance(q.clauses[0].expr, ast.DocCall)
    assert isinstance(q.clauses[1], ast.ForClause)
    assert q.where is None
    assert q.ret == ast.VarRef("x")


def test_multiple_for_bindings():
    q = parse_xquery("for $a in $x//p, $b in $a/q return $b")
    assert len(q.clauses) == 2
    assert q.clauses[1].var == "b"


def test_where_comparison():
    q = parse_xquery("for $a in $x//p where $a = 3 return $a")
    assert isinstance(q.where, ast.Comparison)
    assert q.where.op == "="
    assert q.where.right == ast.Literal(3)


def test_boolean_ops_precedence():
    q = parse_xquery(
        "for $a in $x//p where $a = 1 and $a = 2 or $a = 3 return $a")
    assert isinstance(q.where, ast.BoolOp)
    assert q.where.op == "or"
    assert q.where.terms[0].op == "and"


def test_quantifier_some():
    q = parse_xquery(
        "for $a in $x//p where some $t in $y//q satisfies $a = $t "
        "return $a")
    quant = q.where
    assert isinstance(quant, ast.Quantified)
    assert quant.kind == "some"
    assert quant.var == "t"


def test_quantifier_every():
    q = parse_xquery(
        'for $a in $x//p where every $b in doc("b.xml")//c '
        "satisfies $b/@y > 1993 return $a")
    assert q.where.kind == "every"
    pred = q.where.pred
    assert isinstance(pred, ast.Comparison)
    assert pred.left.path.steps[0].axis == "attribute"


def test_function_calls():
    q = parse_xquery("for $a in distinct-values($x//p) "
                     "where count($a) >= 3 return $a")
    assert q.clauses[0].source.name == "distinct-values"
    assert q.where.left == ast.FuncCall("count", (ast.VarRef("a"),))
    assert q.where.op == ">="


def test_doc_and_document_aliases():
    q1 = parse_xquery('for $x in doc("a.xml")//p return $x')
    q2 = parse_xquery('for $x in document("a.xml")//p return $x')
    assert q1.clauses[0].source.source == ast.DocCall("a.xml")
    assert q2.clauses[0].source.source == ast.DocCall("a.xml")


def test_doc_requires_string_literal():
    with pytest.raises(XQueryParseError):
        parse_xquery("for $x in doc($v)//p return $x")


def test_path_predicate_with_variable_is_opaque():
    from repro.xpath.ast import OpaquePredicate
    q = parse_xquery("for $b in $d/book[$a = author] return $b")
    pred = q.clauses[0].source.path.steps[0].predicates[0]
    assert isinstance(pred, OpaquePredicate)


def test_path_predicate_selfcontained_is_classified():
    from repro.xpath.ast import ComparisonPredicate
    q = parse_xquery("for $b in $d/book[@year > 1993] return $b")
    pred = q.clauses[0].source.path.steps[0].predicates[0]
    assert isinstance(pred, ComparisonPredicate)


def test_element_constructor():
    q = parse_xquery("for $a in $x//p return <r><v> { $a } </v></r>")
    ctor = q.ret
    assert isinstance(ctor, ast.ElementCtor)
    assert ctor.name == "r"
    inner = ctor.content[0]
    assert isinstance(inner, ast.ElementCtor)
    assert isinstance(inner.content[0], ast.ExprPart)


def test_constructor_attribute_with_embedded_expr():
    q = parse_xquery(
        'for $t in $x//t return <m title="{ $t }"><p>y</p></m>')
    name, parts = q.ret.attributes[0]
    assert name == "title"
    assert isinstance(parts[0], ast.ExprPart)


def test_empty_element_constructor():
    q = parse_xquery("for $a in $x//p return <done/>")
    assert q.ret == ast.ElementCtor("done", (), ())


def test_comments_are_skipped():
    q = parse_xquery(
        "(: header :) for $a in $x//p (: mid :) return $a")
    assert isinstance(q, ast.FLWR)


def test_nested_flwr_in_let():
    q = parse_xquery(
        "let $t := (for $b in $x//b return $b) for $a in $x//a return $a")
    assert isinstance(q.clauses[0].expr, ast.FLWR)


def test_parse_error_has_location():
    with pytest.raises(XQueryParseError) as exc_info:
        parse_xquery("for $a in return $a")
    assert exc_info.value.line is not None


def test_trailing_garbage_rejected():
    with pytest.raises(XQueryParseError):
        parse_xquery("for $a in $x//p return $a extra")


def test_mismatched_constructor_rejected():
    with pytest.raises(XQueryParseError):
        parse_xquery("for $a in $x//p return <r></s>")


def test_exists_call_in_where():
    q = parse_xquery(
        "for $a in $x//p where exists(for $b in $x//q where $a = $b "
        "return $b) return $a")
    assert q.where.name == "exists"
    assert isinstance(q.where.args[0], ast.FLWR)


def test_string_roundtrip_smoke():
    text = 'for $a in distinct-values($d//author) return <r>{ $a }</r>'
    q = parse_xquery(text)
    assert "distinct-values" in str(q)
    assert "<r>" in str(q)
