"""Order-property inference, sort elision and the ordering bugfixes.

Differential pins: elision-on ≡ elision-off ≡ reference ≡ physical ≡
pipelined, byte for byte — including mixed-type and NULL order-by keys,
descending ties, and the evaluator's dedup-skip fast path on documents
with recursive (nested) tags.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, compile_query
from repro.datagen import BIDS_DTD, ITEMS_DTD
from repro.datagen.auction import generate_bids, generate_items
from repro.engine.context import EvalContext
from repro.engine.physical import run_physical
from repro.engine.pipeline import run_pipelined
from repro.errors import EvaluationError
from repro.nal.unary_ops import (
    DistinctProject,
    ElidedSort,
    Sort,
    Table,
    _Inverted,
)
from repro.nal.values import NULL, Tup, sort_key
from repro.optimizer import properties
from repro.optimizer.cost import CostModel
from repro.optimizer.elide_order import elide_sorts, elided_sorts
from repro.optimizer.properties import (
    OrderProperties,
    properties_of,
    properties_to_string,
    satisfies_sort,
)
from repro.xmldb.document import DocumentStore
from repro.xmldb.node import element
from repro.xpath.evaluator import evaluate_path
from repro.xpath.parser import parse_path

MODES = ("reference", "physical", "pipelined")


@pytest.fixture(scope="module")
def auction_db() -> Database:
    db = Database()
    db.register_tree("items.xml", generate_items(40, seed=11),
                     dtd_text=ITEMS_DTD)
    db.register_tree("bids.xml", generate_bids(200, items=40, seed=11),
                     dtd_text=BIDS_DTD)
    return db


def run_everywhere(db: Database, text: str) -> dict[str, str]:
    """The query's nested-plan output under every engine × elision
    combination (keys like ``physical/on``)."""
    outputs: dict[str, str] = {}
    for enabled in (False, True):
        with properties.elision(enabled):
            plan = compile_query(text, db).plan_named("nested").plan
            for mode in MODES:
                key = f"{mode}/{'on' if enabled else 'off'}"
                outputs[key] = db.execute(plan, mode=mode).output
    return outputs


# ---------------------------------------------------------------------------
# Inference rules (unit level)
# ---------------------------------------------------------------------------
def table(rows, attrs=("a", "b")) -> Table:
    return Table("t", attrs, [Tup(dict(zip(attrs, r))) for r in rows])


def test_singleton_like_table_satisfies_any_sort():
    store = DocumentStore()
    props = properties_of(table([(1, 2)]), store)
    assert props.at_most_one
    assert satisfies_sort(props, (("a", False), ("b", True)))


def test_sort_establishes_and_distinct_preserves():
    store = DocumentStore()
    plan = DistinctProject(Sort(table([(2, "x"), (1, "y")]), ["a"]),
                           ["a"])
    props = properties_of(plan, store)
    assert props.sorted_on == (("a", False),)
    assert props.duplicate_free
    assert satisfies_sort(props, (("a", False),))
    assert not satisfies_sort(props, (("a", True),))
    assert not satisfies_sort(props, (("a", False), ("b", False)))


def test_alias_resolution_through_map():
    from repro.nal.scalar import AttrRef
    from repro.nal.unary_ops import Map
    store = DocumentStore()
    plan = Map(Sort(table([(2, "x"), (1, "y")]), ["a"]), "k",
               AttrRef("a"))
    props = properties_of(plan, store)
    assert props.resolve("k") == "a"
    assert satisfies_sort(props, (("k", False),))


def test_elide_sorts_removes_redundant_stacked_sort():
    store = DocumentStore()
    plan = Sort(Sort(table([(2, "x"), (1, "y")]), ["a", "b"]), ["a"])
    elided = elide_sorts(plan, store)
    assert isinstance(elided, ElidedSort)
    assert isinstance(elided.children[0], Sort)
    ctx = EvalContext(store)
    assert elided.evaluate(ctx) == plan.evaluate(ctx)


def test_elide_sorts_keeps_required_sort():
    store = DocumentStore()
    plan = Sort(table([(2, "x"), (1, "y")]), ["a"])
    assert elide_sorts(plan, store) is plan


def test_rebound_attribute_does_not_inherit_stale_sortedness():
    """Project away a sorted column, then χ-rebind the same name to an
    unsorted one: the old fact must not justify eliding the new Sort
    (regression — value-sequence facts survive projections, but a
    rebinding retires them)."""
    from repro.nal.scalar import AttrRef
    from repro.nal.unary_ops import Map, ProjectAway
    store = DocumentStore()
    rows = [(1, 9), (3, 1), (7, 7), (9, 3)]
    inner = ProjectAway(Sort(table(rows, ("a", "c")), ["a"]), ["a"])
    plan = Sort(Map(inner, "a", AttrRef("c")), ["a"])
    optimized = elide_sorts(plan, store)
    assert not elided_sorts(optimized)
    ctx = EvalContext(store)
    assert [t["a"] for t in optimized.evaluate(ctx)] == [1, 3, 7, 9]


# ---------------------------------------------------------------------------
# End-to-end elision on the auction data
# ---------------------------------------------------------------------------
ORDER_BY_ITEMNO = '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
let $n1 := zero-or-one($i1/itemno)
order by $n1
return <i>{ $n1 }</i>
'''


def test_itemno_order_by_is_elided_and_identical(auction_db):
    plan = compile_query(ORDER_BY_ITEMNO,
                         auction_db).plan_named("nested").plan
    assert elided_sorts(plan), "itemno is born sorted — Sort must elide"
    outputs = run_everywhere(auction_db, ORDER_BY_ITEMNO)
    assert len(set(outputs.values())) == 1, outputs.keys()
    values = outputs["reference/on"]
    nos = [b.split("</i>")[0] for b in values.split("<i>")[1:]]
    assert nos == sorted(nos)


def test_descending_order_by_is_not_elided(auction_db):
    text = ORDER_BY_ITEMNO.replace("order by $n1",
                                   "order by $n1 descending")
    plan = compile_query(text, auction_db).plan_named("nested").plan
    assert not elided_sorts(plan)
    outputs = run_everywhere(auction_db, text)
    assert len(set(outputs.values())) == 1


def test_unsorted_column_is_not_elided(auction_db):
    """bids.xml itemno values arrive in random bid order — the
    data-derived guarantee must refuse."""
    text = '''
let $b1 := doc("bids.xml")
for $t1 in $b1//bidtuple
let $n1 := zero-or-one($t1/itemno)
order by $n1
return <i>{ $n1 }</i>
'''
    plan = compile_query(text, auction_db).plan_named("nested").plan
    assert not elided_sorts(plan)
    outputs = run_everywhere(auction_db, text)
    assert len(set(outputs.values())) == 1


def test_guarantee_is_cached_on_the_document(auction_db):
    compile_query(ORDER_BY_ITEMNO, auction_db).plans()
    cache = auction_db.store.get("items.xml").order_guarantees
    assert any(verdict is True for verdict in cache.values())


def test_null_keys_order_empty_least_in_both_directions(auction_db):
    """reserveprice is optional: missing values bind NULL.  "Empty
    least" must hold identically across engines and elision — NULLs
    first ascending, last descending, ties in document order."""
    base = '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
let $r1 := $i1/reserveprice
order by $r1 {dir}
return <p>{ $r1 }#</p>
'''
    for direction in ("", "descending"):
        text = base.replace("{dir}", direction)
        outputs = run_everywhere(auction_db, text)
        assert len(set(outputs.values())) == 1, direction
        values = [b.split("#</p>")[0] for b in
                  outputs["reference/on"].split("<p>")[1:]]
        empties = [i for i, v in enumerate(values) if v == ""]
        if direction:
            assert empties == list(range(len(values) - len(empties),
                                         len(values)))
        else:
            assert empties == list(range(len(empties)))


def test_properties_to_string_annotates_operators(auction_db):
    plan = compile_query(ORDER_BY_ITEMNO,
                        auction_db).plan_named("nested").plan
    text = properties_to_string(plan, auction_db.store)
    assert "Sort[elided: __ord1]" in text
    assert "sorted_on=[n1]" in text
    assert "doc-order(i1)" in text
    assert "dup-free" in text


# ---------------------------------------------------------------------------
# The ordering bugfixes
# ---------------------------------------------------------------------------
MIXED_VALUES = [3, "x", 1, True, False, NULL, [], "2.5", 2.5, -7,
                10 ** 400, "nan", ["a", "b"], [1, 2], "", "10"]


def test_sort_key_is_total_over_mixed_values():
    keys = [sort_key(v) for v in MIXED_VALUES]
    ordered = sorted(keys)  # raises if any pair is incomparable
    assert sorted(ordered) == ordered
    # explicit rank expectations
    assert sort_key(NULL) == sort_key([]) == (0, 0.0)
    assert sort_key("nan") == sort_key(float("nan"))
    assert sort_key(5) == sort_key("5.0") == sort_key("5")
    assert sort_key(NULL) < sort_key("nan") < sort_key(-10) \
        < sort_key(False) < sort_key("") < sort_key([1, 2])


def test_sort_key_huge_int_does_not_overflow():
    assert sort_key(10 ** 400) < sort_key(10 ** 401)
    assert sort_key(10 ** 400) > sort_key(1.5)


def test_mixed_type_sort_is_identical_across_engines():
    rows = [(v, i) for i, v in enumerate(MIXED_VALUES)]
    store = DocumentStore()
    for descending in (False, True):
        plan = Sort(table(rows, ("k", "i")), ["k"], [descending])
        results = {
            "reference": plan.evaluate(EvalContext(store)),
            "physical": run_physical(plan, EvalContext(store)),
            "pipelined": list(run_pipelined(plan, EvalContext(store))),
        }
        first = results["reference"]
        assert results["physical"] == first
        assert results["pipelined"] == first
        # stability: equal keys keep input order
        tags = [t["i"] for t in first if t["k"] in (5, "5.0", "5")]
        assert tags == sorted(tags)


def test_descending_ties_are_stable():
    rows = [(1, i) for i in range(5)] + [(2, i) for i in range(5, 8)]
    plan = Sort(table(rows, ("k", "i")), ["k"], [True])
    result = plan.evaluate(EvalContext(DocumentStore()))
    assert [t["i"] for t in result] == [5, 6, 7, 0, 1, 2, 3, 4]


def test_inverted_is_hashable_and_consistent_with_eq():
    a, b = _Inverted((2, 5.0)), _Inverted((2, 5.0))
    assert a == b and hash(a) == hash(b)
    assert a != (2, 5.0)
    assert len({a, b}) == 1


def test_descending_order_by_composes_with_distinct_project():
    """ΠD above a descending Sort: _Inverted keys must never leak into
    the hash-based dedup, ties stay stable, all engines agree."""
    rows = [(2, "b"), (1, "a"), (2, "b"), (NULL, "n"), (1, "c"),
            ("x", "s"), (2, "d")]
    store = DocumentStore()
    plan = DistinctProject(Sort(table(rows, ("k", "v")), ["k"], [True]),
                           ["k", "v"])
    reference = plan.evaluate(EvalContext(store))
    assert run_physical(plan, EvalContext(store)) == reference
    assert list(run_pipelined(plan, EvalContext(store))) == reference
    keys = [t["k"] for t in reference]
    assert keys[0] == "x" and keys[-1] is NULL  # strings > numbers > ⊥


# ---------------------------------------------------------------------------
# Hypothesis: random rows, random order-by specs, every engine agrees
# ---------------------------------------------------------------------------
VALUE_POOL = st.one_of(
    st.integers(-5, 5),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-5, max_value=5),
    st.sampled_from(["a", "b", "10", "-3.5", "", "z"]),
    st.booleans(),
    st.just(NULL),
    st.just([]),
    st.lists(st.integers(-3, 3), min_size=1, max_size=2),
)


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(st.tuples(VALUE_POOL, VALUE_POOL, st.integers()),
                     max_size=12),
       descending=st.tuples(st.booleans(), st.booleans()),
       distinct=st.booleans())
def test_random_order_by_plans_agree_everywhere(rows, descending,
                                                distinct):
    store = DocumentStore()
    plan = Sort(table(rows, ("k1", "k2", "i")), ["k1", "k2"],
                list(descending))
    if distinct:
        plan = DistinctProject(plan, ["k1", "i"])
    results = []
    for enabled in (False, True):
        with properties.elision(enabled):
            optimized = elide_sorts(plan, store)
            results.append(plan.evaluate(EvalContext(store)))
            results.append(run_physical(optimized, EvalContext(store)))
            results.append(
                list(run_pipelined(optimized, EvalContext(store))))
    first = results[0]
    for other in results[1:]:
        assert other == first


# ---------------------------------------------------------------------------
# The evaluator's dedup-skip fast path
# ---------------------------------------------------------------------------
def recursive_db() -> Database:
    """A document whose ``b`` tags nest (so ``//b`` results are not an
    antichain) next to a flat ``c`` level."""
    root = element(
        "a",
        element("b", element("b", element("c", "1", x="1"),
                             element("d", "2")),
                element("c", "3", x="2")),
        element("b", element("c", "4"), element("d", "5")),
        element("d", "6"))
    db = Database()
    db.register_tree("r.xml", root)
    return db


RECURSIVE_PATHS = ("//b", "//c", "//d", "//b/c", "//b//c", "//b/b",
                   "//b/@x", "//c/@x", "b/c", "b/b/c", "//b/c/text()",
                   "//text()", "//*", "//b/*")


@pytest.mark.parametrize("path_text", RECURSIVE_PATHS)
def test_dedup_skip_is_differentially_safe(path_text):
    db = recursive_db()
    root = db.store.get("r.xml").root
    path = parse_path(path_text)
    with properties.elision(False):
        expected = list(evaluate_path(root, path))
    with properties.elision(True), properties.debug_checks(True):
        fast = list(evaluate_path(root, path))
    assert fast == expected


def test_flat_tag_check_blocks_nested_tags():
    db = recursive_db()
    arena = db.store.get("r.xml").arena
    assert not arena.tag_is_flat("b")
    assert arena.tag_is_flat("c") and arena.tag_is_flat("d")


def test_multi_context_paths_still_dedup():
    """Overlapping context nodes (parent and child both in context)
    must fall back to the dedup pass."""
    db = recursive_db()
    root = db.store.get("r.xml").root
    outer = evaluate_path(root, parse_path("//b"))  # nested b's
    with properties.elision(True):
        result = evaluate_path(list(outer), parse_path("//c"))
    seen = set()
    assert all(id(n) not in seen and not seen.add(id(n))
               for n in result)
    keys = [n.order_key for n in result]
    assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Debug switch: elided sorts are re-verified differentially
# ---------------------------------------------------------------------------
def test_debug_checks_catch_a_wrong_elision():
    store = DocumentStore()
    bogus = ElidedSort(table([(2, "x"), (1, "y")]), ["a"])
    ctx = EvalContext(store)
    with properties.debug_checks(True):
        with pytest.raises(EvaluationError, match="elided sort"):
            run_physical(bogus, EvalContext(store))
        with pytest.raises(EvaluationError, match="elided sort"):
            list(run_pipelined(bogus, EvalContext(store)))
    # without the debug switch the (incorrectly) elided sort is the
    # identity — garbage in, garbage out, but no crash
    with properties.debug_checks(False):
        assert [t["a"] for t in run_physical(bogus, ctx)] == [2, 1]


def test_rotated_document_degrades_elision_to_a_real_sort():
    """A data-derived elision carries the (document, seq) it was
    proven against; rotating different content in under the same name
    (the supported unregister + re-register workflow) must make the
    held plan sort for real instead of silently mis-ordering."""
    db = Database()
    db.register_tree("items.xml", generate_items(15, seed=5),
                     dtd_text=ITEMS_DTD)
    plan = compile_query(ORDER_BY_ITEMNO, db).plan_named("nested").plan
    elided = elided_sorts(plan)
    assert elided and elided[0].proof is not None
    assert elided[0].proof[0] == "items.xml"

    db.unregister("items.xml")
    root = element("items")
    for no in ("I00009", "I00002", "I00007"):
        root.append_child(element("itemtuple", element("itemno", no),
                                  element("description", "x"),
                                  element("offered_by", "U00001")))
    db.register_tree("items.xml", root, dtd_text=ITEMS_DTD)
    for mode in MODES:
        out = db.execute(plan, mode=mode).output
        nos = [b.split("</i>")[0] for b in out.split("<i>")[1:]]
        assert nos == sorted(nos), (mode, nos)


def test_structural_elision_carries_no_proof():
    store = DocumentStore()
    plan = elide_sorts(Sort(table([(1, "x")]), ["a"]), store)
    assert isinstance(plan, ElidedSort) and plan.proof is None


def test_debug_checks_accept_a_correct_elision(auction_db):
    plan = compile_query(ORDER_BY_ITEMNO,
                         auction_db).plan_named("nested").plan
    with properties.debug_checks(True):
        for mode in MODES:
            auction_db.execute(plan, mode=mode)


# ---------------------------------------------------------------------------
# Cost model: elided sorts lose the n·log n term
# ---------------------------------------------------------------------------
def test_elided_sort_is_costed_as_identity():
    store = DocumentStore()
    rows = [(i, i) for i in range(64)]
    sort = Sort(table(rows), ["a"])
    elided = ElidedSort(table(rows), ["a"])
    model = CostModel(store)
    full = model.estimate(sort)
    none = model.estimate(elided)
    assert none.total < full.total
    assert none.first_tuple < full.first_tuple
    assert none.cardinality == full.cardinality


def test_order_properties_dataclass_describe():
    props = OrderProperties(sorted_on=(("a", True),),
                            duplicate_free=True, at_most_one=True)
    text = props.describe()
    assert "a desc" in text and "dup-free" in text and "<=1 row" in text
    assert OrderProperties().describe() == "{-}"
