"""Tests for the ``python -m repro`` command line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.__main__ import (
    EXIT_BAD_DOCUMENT,
    EXIT_BAD_QUERY,
    EXIT_SERVER_SATURATED,
    exit_code_for,
    main,
)
from repro.datagen import BIB_DTD, generate_bib
from repro.xmldb.serialize import serialize

QUERY = '''
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name> { $a1 } </name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2/book[$a1 = author]
    return $b2/title }
  </author>
'''


@pytest.fixture
def data_dir(tmp_path: pathlib.Path) -> pathlib.Path:
    (tmp_path / "bib.xml").write_text(
        serialize(generate_bib(6, 2, seed=4)))
    (tmp_path / "bib.dtd").write_text(BIB_DTD)
    return tmp_path


@pytest.fixture
def query_file(tmp_path: pathlib.Path) -> pathlib.Path:
    path = tmp_path / "query.xq"
    path.write_text(QUERY)
    return path


def test_run_query_file(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir)])
    assert code == 0
    out = capsys.readouterr().out
    assert "<author>" in out and "<title>" in out


def test_inline_query(data_dir, capsys):
    code = main(["--query",
                 'for $t in doc("bib.xml")//title return $t',
                 "--docs", str(data_dir)])
    assert code == 0
    assert "<title>" in capsys.readouterr().out


def test_doc_flag_registers_named_document(data_dir, capsys):
    code = main(["--query",
                 'for $t in doc("books.xml")//title return $t',
                 "--doc", f"books.xml={data_dir / 'bib.xml'}"])
    assert code == 0
    assert "<title>" in capsys.readouterr().out


def test_explain_lists_alternatives(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir), "--explain"])
    assert code == 0
    out = capsys.readouterr().out
    assert "alternatives" in out
    assert "nested" in out
    assert "Ξ" in out


def test_plan_selection_and_stats(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir),
                 "--plan", "nested", "--stats"])
    assert code == 0
    captured = capsys.readouterr()
    assert "document scans" in captured.err
    assert "plan: nested" in captured.err


def test_properties_flag_annotates_plans(data_dir, capsys):
    code = main(["--query",
                 'for $t in doc("bib.xml")//title return $t',
                 "--docs", str(data_dir), "--properties"])
    assert code == 0
    out = capsys.readouterr().out
    assert "alternatives" in out
    # the Υ over //title is provably in document order + duplicate-free
    assert "doc-order(t)" in out
    assert "dup-free" in out


def test_properties_flag_shows_elided_sorts(tmp_path, capsys):
    """An order-by key that is sorted in document order (the auction's
    itemno) must render as an elided sort with its inferred facts."""
    from repro.datagen import ITEMS_DTD
    from repro.datagen.auction import generate_items
    (tmp_path / "items.xml").write_text(
        serialize(generate_items(12, seed=6)))
    (tmp_path / "items.dtd").write_text(ITEMS_DTD)
    code = main(["--query",
                 'let $d1 := doc("items.xml") '
                 'for $i1 in $d1//itemtuple '
                 'let $n1 := zero-or-one($i1/itemno) '
                 'order by $n1 return <i>{ $n1 }</i>',
                 "--docs", str(tmp_path), "--properties", "--explain"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sort[elided: __ord1]" in out
    assert "sorted_on=[n1]" in out
    assert "doc-order(i1)" in out


def test_cost_ranking_flag(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir),
                 "--ranking", "cost", "--explain"])
    assert code == 0
    assert "cost≈" in capsys.readouterr().out


def test_reference_mode(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir),
                 "--mode", "reference"])
    assert code == 0
    assert "<author>" in capsys.readouterr().out


def test_vectorized_mode(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir),
                 "--mode", "vectorized"])
    assert code == 0
    assert "<author>" in capsys.readouterr().out


def test_auto_mode(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir),
                 "--mode", "auto"])
    assert code == 0
    assert "<author>" in capsys.readouterr().out


def test_timing_flag_stream_split(data_dir, query_file, capsys):
    """The --timing contract: query output on stdout (pipeable),
    trace and metrics on stderr — never interleaved into the result."""
    code = main([str(query_file), "--docs", str(data_dir), "--timing"])
    assert code == 0
    captured = capsys.readouterr()
    assert "<author>" in captured.out
    assert "== TRACE ==" not in captured.out
    assert "== METRICS ==" not in captured.out
    assert "== TRACE ==" in captured.err
    assert "== METRICS ==" in captured.err
    assert "<author>" not in captured.err


def test_timing_flag_vectorized_mode(data_dir, query_file, capsys):
    """--timing records vectorized batch counters on stderr."""
    code = main([str(query_file), "--docs", str(data_dir), "--timing",
                 "--mode", "vectorized"])
    assert code == 0
    captured = capsys.readouterr()
    assert "<author>" in captured.out
    assert "vectorized." in captured.err


def test_unknown_plan_label_fails_cleanly(data_dir, query_file, capsys):
    code = main([str(query_file), "--docs", str(data_dir),
                 "--plan", "hashjoin"])
    assert code == EXIT_BAD_QUERY
    assert "error" in capsys.readouterr().err


def test_parse_error_fails_cleanly(data_dir, capsys):
    code = main(["--query", "for $x in", "--docs", str(data_dir)])
    assert code == EXIT_BAD_QUERY
    assert "error" in capsys.readouterr().err


def test_bad_doc_spec_rejected(data_dir):
    with pytest.raises(SystemExit):
        main(["--query", "for $x in doc('a')//b return $x",
              "--doc", "no-equals-sign"])


def test_missing_query_rejected():
    with pytest.raises(SystemExit):
        main(["--docs", "."])


def test_warns_without_documents(tmp_path, capsys):
    query = tmp_path / "q.xq"
    query.write_text('for $x in doc("a.xml")//b return $x')
    code = main([str(query), "--explain"])
    assert code == 0  # explain works without documents
    assert "no documents" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The `stats` subcommand (arena statistics)
# ----------------------------------------------------------------------
def test_stats_subcommand_prints_arena_statistics(data_dir, capsys):
    code = main(["stats", "bib.xml", "--docs", str(data_dir)])
    assert code == 0
    out = capsys.readouterr().out
    assert "arena statistics for 'bib.xml'" in out
    assert "tag counts" in out
    assert "book" in out and "author" in out
    assert "depth histogram" in out
    assert "level 0" in out


def test_stats_subcommand_counts_match_document(data_dir, capsys):
    from repro.api import Database
    db = Database()
    db.register_text("bib.xml",
                     (data_dir / "bib.xml").read_text())
    expected = db.store.get("bib.xml").arena.tag_count("book")
    code = main(["stats", "bib.xml",
                 "--doc", f"bib.xml={data_dir / 'bib.xml'}"])
    assert code == 0
    out = capsys.readouterr().out
    assert f"book                     {expected}" in out


def test_stats_unknown_document_fails_cleanly(data_dir, capsys):
    code = main(["stats", "missing.xml", "--docs", str(data_dir)])
    assert code == EXIT_BAD_DOCUMENT
    assert "unknown document" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Exit codes: bad-query vs bad-document vs server-saturated
# ----------------------------------------------------------------------
def test_unknown_document_exit_code(data_dir, capsys):
    code = main(["--query",
                 'for $t in doc("missing.xml")//title return $t',
                 "--docs", str(data_dir)])
    assert code == EXIT_BAD_DOCUMENT
    assert "unknown document" in capsys.readouterr().err


def test_bad_document_xml_exit_code(tmp_path, capsys):
    (tmp_path / "broken.xml").write_text("<a><b></a>")
    code = main(["--query",
                 'for $t in doc("broken.xml")//t return $t',
                 "--docs", str(tmp_path)])
    assert code == EXIT_BAD_DOCUMENT
    assert "error" in capsys.readouterr().err


def test_exit_codes_are_distinct_and_stable():
    """The code ↔ error-class mapping is a contract (mirrored by the
    server's HTTP statuses); UnknownDocumentError must map to the
    document code even though it subclasses EvaluationError."""
    from repro.errors import (
        EvaluationError,
        ServerSaturatedError,
        UnknownDocumentError,
        XMLParseError,
        XQueryParseError,
    )
    assert (EXIT_BAD_QUERY, EXIT_BAD_DOCUMENT,
            EXIT_SERVER_SATURATED) == (2, 3, 4)
    assert exit_code_for(XQueryParseError("x")) == EXIT_BAD_QUERY
    assert exit_code_for(EvaluationError("x")) == EXIT_BAD_QUERY
    assert exit_code_for(UnknownDocumentError("x", [])) \
        == EXIT_BAD_DOCUMENT
    assert exit_code_for(XMLParseError("x")) == EXIT_BAD_DOCUMENT
    assert exit_code_for(ServerSaturatedError(4, 16)) \
        == EXIT_SERVER_SATURATED
    assert exit_code_for(RuntimeError("x")) == 1
