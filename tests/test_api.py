"""Tests for the high-level public API (`repro.api`)."""

from __future__ import annotations

import pytest

from repro import Database, compile_query
from repro.datagen import BIB_DTD, generate_bib
from repro.engine.executor import ExecutionResult

SIMPLE = """
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
return <t> { $t1 } </t>
"""

NESTED = """
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name> { $a1 } </name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2/book[$a1 = author]
    return $b2/title }
  </author>
"""


@pytest.fixture
def db() -> Database:
    database = Database()
    database.register_tree("bib.xml", generate_bib(8, 2, seed=2),
                           dtd_text=BIB_DTD)
    return database


def test_register_text_with_doctype_dtd():
    db = Database()
    doc = db.register_text("tiny.xml", """
<!DOCTYPE r [
<!ELEMENT r (x*)>
<!ELEMENT x (#PCDATA)>
]>
<r><x>1</x><x>2</x></r>
""")
    assert doc.dtd is not None
    assert "x" in doc.dtd.elements


def test_register_text_explicit_dtd_overrides_none():
    db = Database()
    doc = db.register_text("tiny.xml", "<r><x>1</x></r>",
                           dtd_text="<!ELEMENT r (x*)>\n"
                                    "<!ELEMENT x (#PCDATA)>")
    assert doc.dtd is not None


def test_compile_and_run_best(db):
    query = compile_query(NESTED, db)
    result = query.run()
    assert isinstance(result, ExecutionResult)
    assert "<author>" in result.output
    assert result.stats["document_scans"]["bib.xml"] <= 2


def test_run_specific_label(db):
    query = compile_query(NESTED, db)
    nested = query.run("nested")
    best = query.run()
    # nested rescans once per distinct author; best does not
    assert nested.stats["document_scans"]["bib.xml"] > \
        best.stats["document_scans"]["bib.xml"]


def test_plans_order_and_nested_last(db):
    query = compile_query(NESTED, db)
    plans = query.plans()
    assert plans[-1].label == "nested"
    assert plans[0].rank <= plans[-1].rank
    assert all(p.applied == () for p in plans if p.label == "nested")


def test_plans_are_cached(db):
    query = compile_query(NESTED, db)
    assert query.plans() is query.plans()


def test_plan_named_unknown_label_raises(db):
    query = compile_query(NESTED, db)
    with pytest.raises(KeyError, match="available"):
        query.plan_named("hashjoin")


def test_explain_mentions_operators(db):
    query = compile_query(NESTED, db)
    text = query.explain()
    assert "Ξ" in text and "χ" in text
    best_text = query.explain(query.best().label)
    assert best_text != text


def test_unnestable_query_still_has_nested_plan(db):
    query = compile_query(SIMPLE, db)
    labels = [p.label for p in query.plans()]
    assert "nested" in labels


def test_execute_rejects_unknown_mode(db):
    query = compile_query(SIMPLE, db)
    with pytest.raises(ValueError, match="unknown execution mode"):
        db.execute(query.plan, mode="turbo")


def test_reference_and_physical_agree(db):
    query = compile_query(NESTED, db)
    for alt in query.plans():
        physical = db.execute(alt.plan, mode="physical")
        reference = db.execute(alt.plan, mode="reference")
        assert physical.output == reference.output, alt.label


def test_execution_result_repr(db):
    query = compile_query(SIMPLE, db)
    result = query.run()
    text = repr(result)
    assert "rows=" in text and "elapsed=" in text


# ---------------------------------------------------------------------------
# Store management: list_documents / unregister / index_mode
# ---------------------------------------------------------------------------

def test_list_documents(db):
    assert db.list_documents() == ["bib.xml"]
    db.register_text("a.xml", "<a/>")
    assert db.list_documents() == ["a.xml", "bib.xml"]


def test_unregister_removes_document(db):
    db.unregister("bib.xml")
    assert db.list_documents() == []
    # the name is free again: stores stay append-only per name in use
    db.register_tree("bib.xml", generate_bib(2, 1, seed=5),
                     dtd_text=BIB_DTD)
    assert db.list_documents() == ["bib.xml"]


def test_unregister_unknown_raises(db):
    from repro.errors import UnknownDocumentError
    with pytest.raises(UnknownDocumentError, match="nope.xml"):
        db.unregister("nope.xml")


def test_unregister_drops_indexes_and_stats():
    db = Database(index_mode="eager")
    db.register_tree("bib.xml", generate_bib(4, 2, seed=2),
                     dtd_text=BIB_DTD)
    assert db.store.indexes.built("bib.xml")
    compile_query(SIMPLE, db).run()
    db.unregister("bib.xml")
    assert not db.store.indexes.built("bib.xml")
    assert "bib.xml" not in db.store.stats.document_scans
    assert "bib.xml" not in db.store.stats.index_probes


def test_default_index_mode_is_off(db):
    assert db.index_mode == "off"
    assert not db.store.indexes.enabled
    labels = [p.label for p in compile_query(SIMPLE, db).plans()]
    assert all(not label.endswith("+index") for label in labels)


def test_indexed_database_runs_index_plan():
    db = Database(index_mode="lazy")
    db.register_tree("bib.xml", generate_bib(8, 2, seed=2),
                     dtd_text=BIB_DTD)
    query = compile_query(SIMPLE, db)
    assert query.best().label == "nested+index"
    result = query.run()
    assert result.stats["total_probes"] >= 1
    assert result.stats["document_scans"] == {}
    scan_db = Database()
    scan_db.register_tree("bib.xml", generate_bib(8, 2, seed=2),
                          dtd_text=BIB_DTD)
    assert result.output == compile_query(SIMPLE, scan_db).run().output
