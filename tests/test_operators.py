"""Reference semantics of the NAL operators, including the paper's
worked examples (Figs. 1 and 2) and the §2 Ξ example."""

import pytest

from repro.engine.context import EvalContext
from repro.errors import EvaluationError
from repro.nal import (
    AggSpec,
    AntiJoin,
    Construct,
    Cross,
    DistinctProject,
    GroupBinary,
    GroupConstruct,
    GroupUnary,
    Join,
    Lit,
    Map,
    Out,
    OuterJoin,
    Project,
    ProjectAway,
    Rename,
    Select,
    SelfGroup,
    SemiJoin,
    Singleton,
    Sort,
    Table,
    Tup,
    Unnest,
    UnnestMap,
    NULL,
)
from repro.nal.scalar import (
    AttrRef,
    Comparison,
    Const,
    Exists,
    Forall,
    FuncCall,
    In,
    NestedPlan,
    TRUE,
)
from repro.xmldb.document import DocumentStore


@pytest.fixture
def ctx():
    return EvalContext(DocumentStore())


def rows(plan, ctx):
    return plan.evaluate(ctx)


# ----------------------------------------------------------------------
# Leaves and simple unary operators
# ----------------------------------------------------------------------
def test_singleton(ctx):
    assert rows(Singleton(), ctx) == [Tup({})]


def test_table_checks_attrs():
    with pytest.raises(EvaluationError):
        Table("T", ["a"], [{"b": 1}])


def test_select_preserves_order(ctx, r2):
    plan = Select(r2, Comparison(AttrRef("A2"), "=", Const(1)))
    assert [t["B"] for t in rows(plan, ctx)] == [2, 3]


def test_project(ctx, r2):
    out = rows(Project(r2, ["B"]), ctx)
    assert [t["B"] for t in out] == [2, 3, 4, 5]
    assert out[0].attrs() == ("B",)


def test_project_away(ctx, r2):
    out = rows(ProjectAway(r2, ["B"]), ctx)
    assert out[0].attrs() == ("A2",)


def test_rename(ctx, r1):
    out = rows(Rename(r1, {"A1": "X"}), ctx)
    assert out[0].attrs() == ("X",)
    assert Rename(r1, {"A1": "X"}).attrs() == {"X"}


def test_distinct_project_first_occurrence(ctx, r2):
    out = rows(DistinctProject(r2, ["A2"]), ctx)
    assert [t["A2"] for t in out] == [1, 2]


def test_distinct_project_with_rename(ctx, r2):
    out = rows(DistinctProject(r2, ["A2"], rename={"A2": "K"}), ctx)
    assert out[0].attrs() == ("K",)


def test_map_fig1(ctx, r1, r2):
    """Figure 1: χ_{a:σ_{A1=A2}(R2)}(R1)."""
    plan = Map(r1, "a", NestedPlan(
        Select(r2, Comparison(AttrRef("A1"), "=", AttrRef("A2")))))
    out = rows(plan, ctx)
    assert [t["A1"] for t in out] == [1, 2, 3]
    assert [len(t["a"]) for t in out] == [2, 2, 0]
    assert out[0]["a"][0] == Tup({"A2": 1, "B": 2})


def test_unnest_map(ctx, r1):
    plan = UnnestMap(r1, "x", FuncCall("distinct-values",
                                       [Const([10, 20, 10])]))
    out = rows(plan, ctx)
    # each R1 tuple expands to the two distinct values
    assert len(out) == 6
    assert out[0]["x"] == 10 and out[1]["x"] == 20


def test_unnest_map_empty_sequence_drops_tuple(ctx, r1):
    plan = UnnestMap(r1, "x", Const([]))
    assert rows(plan, ctx) == []


def test_unnest_basic(ctx):
    nested = Table("N", ["k", "g"], [
        {"k": 1, "g": [Tup({"v": "a"}), Tup({"v": "b"})]},
        {"k": 2, "g": []},
    ])
    out = rows(Unnest(nested, "g", ["v"]), ctx)
    assert [(t["k"], t["v"]) for t in out] == [(1, "a"), (1, "b")]


def test_unnest_preserve_empty_pads_null(ctx):
    nested = Table("N", ["k", "g"], [{"k": 2, "g": []}])
    out = rows(Unnest(nested, "g", ["v"], preserve_empty=True), ctx)
    assert out == [Tup({"k": 2, "v": NULL})]


def test_unnest_dedup_by_value(ctx):
    nested = Table("N", ["k", "g"], [
        {"k": 1, "g": [Tup({"v": "a"}), Tup({"v": "a"}),
                       Tup({"v": "b"})]},
    ])
    out = rows(Unnest(nested, "g", ["v"], dedup=True), ctx)
    assert [t["v"] for t in out] == ["a", "b"]


def test_sort_stable(ctx):
    table = Table("T", ["k", "i"], [
        {"k": "b", "i": 1}, {"k": "a", "i": 2}, {"k": "b", "i": 3},
        {"k": "a", "i": 4},
    ])
    out = rows(Sort(table, ["k"]), ctx)
    assert [(t["k"], t["i"]) for t in out] == [
        ("a", 2), ("a", 4), ("b", 1), ("b", 3)]


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------
def test_cross_left_major_order(ctx, r1, r2):
    out = rows(Cross(r1, r2), ctx)
    assert len(out) == 12
    assert [t["A1"] for t in out[:4]] == [1, 1, 1, 1]
    assert [t["B"] for t in out[:4]] == [2, 3, 4, 5]


def test_cross_rejects_attr_overlap(r1):
    with pytest.raises(EvaluationError, match="overlap"):
        Cross(r1, Table("T", ["A1"], [{"A1": 9}]))


def test_join_is_selection_over_cross(ctx, r1, r2):
    pred = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    joined = rows(Join(r1, r2, pred), ctx)
    reference = rows(Select(Cross(r1, r2), pred), ctx)
    assert joined == reference


def test_semijoin(ctx, r1, r2):
    pred = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    out = rows(SemiJoin(r1, r2, pred), ctx)
    assert [t["A1"] for t in out] == [1, 2]
    assert out[0].attrs() == ("A1",)


def test_antijoin(ctx, r1, r2):
    pred = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    out = rows(AntiJoin(r1, r2, pred), ctx)
    assert [t["A1"] for t in out] == [3]


def test_outer_join_pads_default(ctx, r1, r2):
    grouped = GroupUnary(r2, "g", ["A2"], "=", AggSpec("count"))
    pred = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    out = rows(OuterJoin(r1, grouped, pred, "g", Const(0)), ctx)
    assert [(t["A1"], t["g"]) for t in out] == [(1, 2), (2, 2), (3, 0)]
    assert out[2]["A2"] is NULL


# ----------------------------------------------------------------------
# Grouping (Figure 2)
# ----------------------------------------------------------------------
def test_unary_group_count_fig2(ctx, r2):
    out = rows(GroupUnary(r2, "g", ["A2"], "=", AggSpec("count")), ctx)
    assert [(t["A2"], t["g"]) for t in out] == [(1, 2), (2, 2)]


def test_unary_group_id_fig2(ctx, r2):
    out = rows(GroupUnary(r2, "g", ["A2"], "=", AggSpec("id")), ctx)
    assert out[0]["g"] == [Tup({"A2": 1, "B": 2}), Tup({"A2": 1, "B": 3})]


def test_binary_group_fig2(ctx, r1, r2):
    out = rows(GroupBinary(r1, r2, "g", ["A1"], "=", ["A2"],
                           AggSpec("id")), ctx)
    assert [t["A1"] for t in out] == [1, 2, 3]
    assert out[2]["g"] == []  # the empty group for A1=3 — no count bug


def test_binary_group_theta_less_than(ctx, r1, r2):
    out = rows(GroupBinary(r1, r2, "g", ["A1"], "<", ["A2"],
                           AggSpec("count")), ctx)
    # A1=1 matches A2 in {2}: two tuples; A1=2,3: none above
    assert [(t["A1"], t["g"]) for t in out] == [(1, 2), (2, 0), (3, 0)]


def test_unary_group_with_filter(ctx, r2):
    agg = AggSpec("count",
                  filter_pred=Comparison(AttrRef("B"), ">", Const(2)))
    out = rows(GroupUnary(r2, "g", ["A2"], "=", agg), ctx)
    assert [(t["A2"], t["g"]) for t in out] == [(1, 1), (2, 2)]


def test_group_min_aggregate(ctx, r2):
    out = rows(GroupUnary(r2, "m", ["A2"], "=", AggSpec("min", "B")), ctx)
    assert [(t["A2"], t["m"]) for t in out] == [(1, 2), (2, 4)]


def test_self_group(ctx, r2):
    out = rows(SelfGroup(r2, "n", ["A2"], AggSpec("count")), ctx)
    assert [(t["A2"], t["B"], t["n"]) for t in out] == [
        (1, 2, 2), (1, 3, 2), (2, 4, 2), (2, 5, 2)]


def test_agg_spec_empty_values():
    assert AggSpec("count").empty_value() == 0
    assert AggSpec("sum", "x").empty_value() == 0
    assert AggSpec("min", "x").empty_value() is NULL
    assert AggSpec("id").empty_value() == []
    assert AggSpec("project", "x").empty_value() == []


def test_agg_spec_dependencies():
    agg = AggSpec("min", "c", filter_pred=Comparison(
        AttrRef("y"), "<=", Const(1993)))
    assert agg.referenced_attrs() == {"c", "y"}
    assert agg.depends_on({"y"})
    assert not agg.depends_on({"z"})


def test_agg_spec_validation():
    with pytest.raises(EvaluationError):
        AggSpec("median")
    with pytest.raises(EvaluationError):
        AggSpec("min")  # needs an attribute


# ----------------------------------------------------------------------
# Quantifier predicates
# ----------------------------------------------------------------------
def test_exists_pred(ctx, r1, r2):
    inner = NestedPlan(Project(
        Select(r2, Comparison(AttrRef("A1"), "=", AttrRef("A2"))),
        ["B"]))
    plan = Select(r1, Exists("x", inner, TRUE))
    assert [t["A1"] for t in rows(plan, ctx)] == [1, 2]


def test_forall_pred(ctx, r1, r2):
    inner = NestedPlan(Project(
        Select(r2, Comparison(AttrRef("A1"), "=", AttrRef("A2"))),
        ["B"]))
    plan = Select(r1, Forall("x", inner,
                             Comparison(AttrRef("x"), ">", Const(2))))
    # A1=1 has B in {2,3} (2 fails); A1=2 has {4,5}; A1=3 vacuously true
    assert [t["A1"] for t in rows(plan, ctx)] == [2, 3]


def test_membership_pred(ctx):
    table = Table("T", ["x", "s"], [
        {"x": 1, "s": [Tup({"v": 1}), Tup({"v": 5})]},
        {"x": 2, "s": [Tup({"v": 3})]},
    ])
    plan = Select(table, In(AttrRef("x"), AttrRef("s")))
    assert [t["x"] for t in rows(plan, ctx)] == [1]


# ----------------------------------------------------------------------
# Ξ construction (§2 example)
# ----------------------------------------------------------------------
AUTHOR_TITLE = [
    {"a": "author1", "t": "title1"},
    {"a": "author1", "t": "title2"},
    {"a": "author2", "t": "title1"},
    {"a": "author2", "t": "title3"},
]


def test_simple_construct_is_identity_with_side_effect(ctx):
    table = Table("T", ["a", "t"], AUTHOR_TITLE)
    plan = Construct(table, [Lit("<t>"), Out(AttrRef("t")), Lit("</t>")])
    out = rows(plan, ctx)
    assert len(out) == 4  # identity on its input
    assert ctx.output_text().startswith("<t>title1</t><t>title2</t>")


def test_group_construct_paper_example(ctx):
    """The exact §2 group-detecting Ξ example."""
    table = Table("T", ["a", "t"], AUTHOR_TITLE)
    plan = GroupConstruct(
        table, ["a"],
        s1=[Lit("<author><name>"), Out(AttrRef("a")), Lit("</name>")],
        s2=[Lit("<title>"), Out(AttrRef("t")), Lit("</title>")],
        s3=[Lit("</author>")])
    rows(plan, ctx)
    assert ctx.output_text() == (
        "<author><name>author1</name>"
        "<title>title1</title><title>title2</title></author>"
        "<author><name>author2</name>"
        "<title>title1</title><title>title3</title></author>")


def test_group_construct_empty_input(ctx):
    table = Table("T", ["a"], [])
    plan = GroupConstruct(table, ["a"], [Lit("x")], [], [Lit("y")])
    rows(plan, ctx)
    assert ctx.output_text() == ""


# ----------------------------------------------------------------------
# A(e) and F(e)
# ----------------------------------------------------------------------
def test_attrs_computation(r1, r2):
    pred = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    assert Join(r1, r2, pred).attrs() == {"A1", "A2", "B"}
    assert SemiJoin(r1, r2, pred).attrs() == {"A1"}
    assert GroupUnary(r2, "g", ["A2"], "=",
                      AggSpec("count")).attrs() == {"A2", "g"}
    assert GroupBinary(r1, r2, "g", ["A1"], "=", ["A2"],
                       AggSpec("id")).attrs() == {"A1", "g"}


def test_free_vars_of_nested_plan(r2):
    inner = Select(r2, Comparison(AttrRef("A1"), "=", AttrRef("A2")))
    assert inner.free_vars() == {"A1"}
    nested = NestedPlan(Project(inner, ["B"]))
    assert nested.free_attrs() == {"A1"}


def test_free_vars_closed_by_outer(r1, r2):
    inner = NestedPlan(Select(
        r2, Comparison(AttrRef("A1"), "=", AttrRef("A2"))))
    outer = Map(r1, "g", inner)
    assert outer.free_vars() == frozenset()


def test_structural_equality(r1, r2):
    pred = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    assert Join(r1, r2, pred) == Join(r1, r2, pred)
    assert Join(r1, r2, pred) != SemiJoin(r1, r2, pred)
    assert Select(r1, pred) != Select(r1, Comparison(
        AttrRef("A1"), "<", AttrRef("A2")))
