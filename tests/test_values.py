"""NAL value model: tuples, NULL, atomization, comparison, keys."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.nal.values import (
    NULL,
    Tup,
    atomize,
    atomize_sequence,
    canonical_key,
    compare_atomic,
    deep_equal,
    effective_boolean,
    general_compare,
    iter_items,
    null_tuple,
    sort_key,
)
from repro.xmldb.node import element


def test_null_is_singleton_and_falsy():
    from repro.nal.values import _Null
    assert _Null() is NULL
    assert not NULL
    assert repr(NULL) == "NULL"


# ----------------------------------------------------------------------
# Tup
# ----------------------------------------------------------------------
def test_tuple_access_and_attrs():
    t = Tup({"a": 1, "b": "x"})
    assert t["a"] == 1
    assert t.attrs() == ("a", "b")
    assert "b" in t and "c" not in t


def test_tuple_missing_attr_raises_with_candidates():
    t = Tup({"a": 1})
    with pytest.raises(EvaluationError, match="'b'"):
        t["b"]


def test_concat_right_wins():
    assert Tup({"a": 1}).concat(Tup({"b": 2}))["b"] == 2


def test_extend_immutable():
    t = Tup({"a": 1})
    t2 = t.extend("b", 2)
    assert "b" not in t
    assert t2["b"] == 2


def test_project_order_follows_argument():
    t = Tup({"a": 1, "b": 2, "c": 3})
    assert t.project(["c", "a"]).attrs() == ("c", "a")


def test_project_away():
    t = Tup({"a": 1, "b": 2})
    assert t.project_away(["a"]).attrs() == ("b",)


def test_rename():
    t = Tup({"a": 1, "b": 2}).rename({"a": "x"})
    assert t.attrs() == ("x", "b")


def test_tuple_equality_deep():
    t1 = Tup({"g": [Tup({"x": 1})]})
    t2 = Tup({"g": [Tup({"x": 1})]})
    assert t1 == t2
    assert t1 != Tup({"g": []})


def test_null_tuple():
    t = null_tuple(["a", "b"])
    assert t["a"] is NULL and t["b"] is NULL


# ----------------------------------------------------------------------
# Atomization / items
# ----------------------------------------------------------------------
def test_atomize_node():
    node = element("t", "hello")
    assert atomize(node) == "hello"


def test_atomize_sequence_flattens():
    assert atomize_sequence([1, [2, 3]]) == [1, 2, 3]


def test_atomize_sequence_single_attr_tuples():
    assert atomize_sequence([Tup({"a": element("x", "v")})]) == ["v"]


def test_atomize_sequence_multi_attr_tuple_rejected():
    with pytest.raises(EvaluationError):
        atomize_sequence([Tup({"a": 1, "b": 2})])


def test_iter_items_skips_null():
    assert iter_items(NULL) == []
    assert iter_items([1, NULL and None]) == [1]


# ----------------------------------------------------------------------
# Comparison semantics
# ----------------------------------------------------------------------
def test_numeric_coercion():
    assert compare_atomic("10", "=", 10)
    assert compare_atomic("9", "<", "10")  # both numeric-parsable
    assert compare_atomic(element("y", "1994"), ">", 1993)


def test_string_comparison():
    assert compare_atomic("abc", "<", "abd")
    assert not compare_atomic("abc", "=", "abd")


def test_null_comparisons_false():
    assert not compare_atomic(NULL, "=", NULL)
    assert not compare_atomic(NULL, "=", 1)
    assert not compare_atomic(1, "!=", NULL)


def test_mixed_number_string_inequality():
    assert not compare_atomic("abc", "=", 1)
    assert compare_atomic("abc", "!=", 1)


def test_general_compare_existential():
    assert general_compare([1, 2, 3], "=", 2)
    assert general_compare(2, "=", [1, 2])
    assert not general_compare([1, 3], "=", [2, 4])
    assert general_compare([Tup({"a": 5})], ">", 4)


def test_general_compare_empty_sequences():
    assert not general_compare([], "=", [])
    assert not general_compare([1], "=", [])


# ----------------------------------------------------------------------
# Keys and ordering
# ----------------------------------------------------------------------
def test_canonical_key_consistent_with_equality():
    assert canonical_key("10") == canonical_key(10)
    assert canonical_key("x") != canonical_key(10)
    assert canonical_key(element("a", "v")) == canonical_key("v")
    assert canonical_key(NULL) == canonical_key(NULL)


def test_canonical_key_bool_distinct_from_number():
    assert canonical_key(True) != canonical_key(1)


def test_bool_comparison_agrees_with_canonical_key():
    """Regression: compare_atomic used to coerce the other operand with
    bool(), making True = 1 (and even True = "x") while canonical_key
    kept booleans distinct — so hash joins, ΠD and grouping silently
    diverged from the reference nested-loop semantics on booleans."""
    assert not compare_atomic(True, "=", 1)
    assert compare_atomic(True, "!=", 1)
    assert not compare_atomic(1, "=", True)
    assert not compare_atomic(False, "=", 0)
    assert not compare_atomic(True, "=", "true")
    assert not compare_atomic(True, "=", "x")
    assert not compare_atomic(False, "=", "")
    assert compare_atomic(True, "=", True)
    assert compare_atomic(False, "=", False)
    assert compare_atomic(True, "!=", False)


def test_bool_order_comparison_rejected():
    with pytest.raises(EvaluationError, match="booleans"):
        compare_atomic(True, "<", False)
    with pytest.raises(EvaluationError, match="booleans"):
        compare_atomic(1, ">=", True)


_atoms = st.one_of(
    st.booleans(),
    st.integers(min_value=-3, max_value=3),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-4, max_value=4),
    st.sampled_from(["", "0", "1", "1.0", "true", "false", "x", "abc"]),
)


@settings(max_examples=500, deadline=None)
@given(a=_atoms, b=_atoms)
def test_compare_atomic_iff_canonical_key(a, b):
    """The documented invariant every hash-based operator relies on:
    for atomizable non-NULL values (booleans included), equality under
    compare_atomic is exactly equality of canonical keys."""
    assert compare_atomic(a, "=", b) == (canonical_key(a)
                                         == canonical_key(b))
    assert compare_atomic(a, "!=", b) == (canonical_key(a)
                                          != canonical_key(b))


def test_sort_key_total_order():
    values = ["b", 2, NULL, "a", 10, element("x", "1")]
    ordered = sorted(values, key=sort_key)
    assert ordered[0] is NULL
    numbers = [v for v in ordered if sort_key(v)[0] == 1]
    assert [sort_key(v)[1] for v in numbers] == sorted(
        sort_key(v)[1] for v in numbers)


def test_deep_equal():
    assert deep_equal([Tup({"a": 1})], [Tup({"a": 1})])
    assert not deep_equal([Tup({"a": 1})], [Tup({"a": 2})])
    assert deep_equal(NULL, NULL)
    assert not deep_equal(NULL, 0)
    node = element("a", "x")
    assert deep_equal(node, node)


def test_effective_boolean():
    assert not effective_boolean([])
    assert effective_boolean([1])
    assert not effective_boolean("")
    assert effective_boolean("x")
    assert not effective_boolean(0)
    assert effective_boolean(element("a"))
    assert not effective_boolean(NULL)
