"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmldb.node import NodeKind
from repro.xmldb.parser import parse_document


def test_single_element():
    result = parse_document("<a/>")
    assert result.root.name == "a"
    assert result.root.children == []


def test_text_content():
    root = parse_document("<a>hello</a>").root
    assert root.string_value() == "hello"


def test_nested_elements():
    root = parse_document("<a><b>x</b><c>y</c></a>").root
    assert [c.name for c in root.child_elements()] == ["b", "c"]
    assert root.string_value() == "xy"


def test_attributes_double_and_single_quotes():
    root = parse_document("""<a x="1" y='two'/>""").root
    assert root.attribute("x").text == "1"
    assert root.attribute("y").text == "two"


def test_entities_in_text():
    root = parse_document("<a>&lt;x&gt; &amp; &quot;y&quot;</a>").root
    assert root.string_value() == '<x> & "y"'


def test_character_references():
    root = parse_document("<a>&#65;&#x42;</a>").root
    assert root.string_value() == "AB"


def test_entities_in_attribute():
    root = parse_document('<a t="a&amp;b"/>').root
    assert root.attribute("t").text == "a&b"


def test_comment_skipped():
    root = parse_document("<a><!-- note -->x</a>").root
    assert root.string_value() == "x"


def test_cdata():
    root = parse_document("<a><![CDATA[<raw>&amp;]]></a>").root
    assert root.string_value() == "<raw>&amp;"


def test_xml_declaration_and_pi():
    text = '<?xml version="1.0"?><?pi data?><a/>'
    assert parse_document(text).root.name == "a"


def test_doctype_with_internal_dtd_captured():
    text = """<!DOCTYPE bib [
<!ELEMENT bib (book*)>
<!ELEMENT book (#PCDATA)>
]>
<bib><book>t</book></bib>"""
    result = parse_document(text)
    assert result.root.name == "bib"
    assert "<!ELEMENT bib (book*)>" in result.dtd_text


def test_doctype_without_internal_subset():
    result = parse_document('<!DOCTYPE a SYSTEM "a.dtd"><a/>')
    assert result.dtd_text is None


def test_document_order_keys_assigned():
    root = parse_document("<a><b/><c><d/></c></a>").root
    nodes = list(root.iter_descendants(include_self=True))
    keys = [n.order_key for n in nodes]
    assert keys == sorted(keys)
    assert len(set(keys)) == len(keys)


def test_whitespace_only_text_preserved_in_model():
    root = parse_document("<a> <b/> </a>").root
    kinds = [c.kind for c in root.children]
    assert NodeKind.ELEMENT in kinds


def test_mismatched_tags_rejected():
    with pytest.raises(XMLParseError):
        parse_document("<a><b></a></b>")


def test_unterminated_element_rejected():
    with pytest.raises(XMLParseError):
        parse_document("<a><b>")


def test_content_after_root_rejected():
    with pytest.raises(XMLParseError):
        parse_document("<a/><b/>")


def test_unquoted_attribute_rejected():
    with pytest.raises(XMLParseError):
        parse_document("<a x=1/>")


def test_unknown_entity_rejected():
    with pytest.raises(XMLParseError):
        parse_document("<a>&nope;</a>")


def test_error_carries_position():
    with pytest.raises(XMLParseError) as exc_info:
        parse_document("<a>&nope;</a>")
    assert exc_info.value.position is not None


def test_trailing_comment_allowed():
    assert parse_document("<a/><!-- done -->").root.name == "a"


def test_self_closing_with_attributes():
    root = parse_document('<a><b k="v"/></a>').root
    assert root.child_elements("b")[0].attribute("k").text == "v"
