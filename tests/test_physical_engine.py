"""The physical evaluator must agree with the reference semantics, and
its hash paths must engage for equality predicates."""

import pytest

from repro.engine.context import EvalContext
from repro.engine.executor import execute
from repro.engine.physical import run_physical, split_equi_conjuncts
from repro.nal import (
    AggSpec,
    AntiJoin,
    GroupBinary,
    GroupUnary,
    Join,
    OuterJoin,
    SelfGroup,
    SemiJoin,
    Table,
)
from repro.nal.scalar import (
    And,
    AttrRef,
    Comparison,
    Const,
    FuncCall,
)
from repro.xmldb.document import DocumentStore


@pytest.fixture
def ctx():
    return EvalContext(DocumentStore())


def both(plan, ctx):
    reference = plan.evaluate(ctx)
    physical = run_physical(plan, ctx)
    assert physical == reference
    return physical


EQ = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
LT = Comparison(AttrRef("A1"), "<", AttrRef("A2"))


def test_split_equi_conjuncts():
    pred = And([EQ, Comparison(AttrRef("B"), ">", Const(2))])
    pairs, residual = split_equi_conjuncts(
        pred, frozenset({"A1"}), frozenset({"A2", "B"}))
    assert pairs == [("A1", "A2")]
    assert len(residual) == 1


def test_split_flipped_equality():
    pred = Comparison(AttrRef("A2"), "=", AttrRef("A1"))
    pairs, residual = split_equi_conjuncts(
        pred, frozenset({"A1"}), frozenset({"A2"}))
    assert pairs == [("A1", "A2")]
    assert residual == []


def test_hash_join_agrees(ctx, r1, r2):
    both(Join(r1, r2, EQ), ctx)


def test_theta_join_fallback_agrees(ctx, r1, r2):
    both(Join(r1, r2, LT), ctx)


def test_join_with_residual(ctx, r1, r2):
    pred = And([EQ, Comparison(AttrRef("B"), ">", Const(2))])
    out = both(Join(r1, r2, pred), ctx)
    assert [(t["A1"], t["B"]) for t in out] == [(1, 3), (2, 4), (2, 5)]


def test_semijoin_agrees(ctx, r1, r2):
    both(SemiJoin(r1, r2, EQ), ctx)
    both(SemiJoin(r1, r2, LT), ctx)


def test_antijoin_agrees(ctx, r1, r2):
    both(AntiJoin(r1, r2, EQ), ctx)
    both(AntiJoin(r1, r2, LT), ctx)


def test_semijoin_with_right_only_residual(ctx, r1, r2):
    pred = And([EQ, Comparison(AttrRef("B"), ">", Const(4))])
    out = both(SemiJoin(r1, r2, pred), ctx)
    assert [t["A1"] for t in out] == [2]


def test_outer_join_agrees(ctx, r1, r2):
    grouped = GroupUnary(r2, "g", ["A2"], "=", AggSpec("count"))
    both(OuterJoin(r1, grouped, EQ, "g", Const(0)), ctx)


def test_outer_join_theta_fallback(ctx, r1, r2):
    grouped = GroupUnary(r2, "g", ["A2"], "=", AggSpec("count"))
    both(OuterJoin(r1, grouped, LT, "g", Const(-1)), ctx)


def test_group_unary_hash_agrees(ctx, r2):
    both(GroupUnary(r2, "g", ["A2"], "=", AggSpec("count")), ctx)
    both(GroupUnary(r2, "m", ["A2"], "=", AggSpec("min", "B")), ctx)


def test_group_unary_theta_agrees(ctx, r2):
    both(GroupUnary(r2, "g", ["A2"], "<=", AggSpec("count")), ctx)


def test_group_binary_agrees(ctx, r1, r2):
    both(GroupBinary(r1, r2, "g", ["A1"], "=", ["A2"], AggSpec("id")),
         ctx)
    both(GroupBinary(r1, r2, "g", ["A1"], "<", ["A2"],
                     AggSpec("count")), ctx)


def test_self_group_agrees(ctx, r2):
    both(SelfGroup(r2, "n", ["A2"], AggSpec("count")), ctx)


def test_string_number_key_coercion_in_hash_join(ctx):
    left = Table("L", ["k"], [{"k": "1"}, {"k": "2"}, {"k": "x"}])
    right = Table("R", ["j"], [{"j": 1}, {"j": 3}])
    pred = Comparison(AttrRef("k"), "=", AttrRef("j"))
    out = both(Join(left, right, pred), ctx)
    assert [t["k"] for t in out] == ["1"]


def test_executor_modes_agree(r1, r2):
    store = DocumentStore()
    plan = Join(r1, r2, EQ)
    physical = execute(plan, store, mode="physical")
    reference = execute(plan, store, mode="reference")
    assert physical.rows == reference.rows


def test_executor_rejects_unknown_mode(r1):
    with pytest.raises(ValueError):
        execute(r1, DocumentStore(), mode="quantum")


def test_unknown_function_in_plan_raises(ctx, r1):
    from repro.nal import Select
    from repro.errors import EvaluationError
    plan = Select(r1, FuncCall("no-such-fn", [AttrRef("A1")]))
    with pytest.raises(EvaluationError):
        run_physical(plan, ctx)
