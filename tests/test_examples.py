"""Smoke tests: every example in examples/ runs to completion and
prints what its docstring promises."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "plan alternatives" in out
    assert "group-xi" in out
    assert "<author>" in out
    assert "'bib.xml': 1" in out  # best plan scans once


def test_auction_analytics():
    out = run_example("auction_analytics.py")
    assert "popular items" in out
    assert "semijoin" in out and "antijoin" in out
    assert "scans=1" in out


def test_time_series_trades():
    out = run_example("time_series_trades.py")
    assert "verified" in out
    assert "every tape in time order" in out


def test_price_report():
    out = run_example("price_report.py")
    assert "cost-ranked" in out
    assert "EXPLAIN ANALYZE" in out
    assert "chosen plan 1" in out


@pytest.mark.slow
def test_optimizer_tour():
    out = run_example("optimizer_tour.py")
    assert out.count("chosen plan") == 7
    # the DBLP case must not offer the grouping plan
    dblp_block = out.split("Paparizos")[1].split("---")[0]
    assert "grouping" not in dblp_block.split("alternatives:")[1] \
        .splitlines()[0]
    # the access-path section: scan plan without indexes, IdxScan with
    access_block = out.split("Access-path selection")[1]
    assert "index_mode='off': best plan is 'nested'" in access_block
    assert "index_mode='eager': best plan is 'nested+index'" \
        in access_block
    assert "IdxScan" in access_block
    assert "document_scans={}" in access_block
