"""The XQuery function library."""

import pytest

from repro.errors import EvaluationError
from repro.nal.functions import call_function
from repro.nal.values import NULL, Tup
from repro.xmldb.node import element


def test_count():
    assert call_function("count", [[1, 2, 3]]) == 3
    assert call_function("count", [[]]) == 0
    assert call_function("count", [5]) == 1


def test_sum_and_empty_sum():
    assert call_function("sum", [["1", "2.5"]]) == 3.5
    assert call_function("sum", [[]]) == 0


def test_min_max_numeric():
    assert call_function("min", [["10", "9", "30"]]) == 9
    assert call_function("max", [["10", "9", "30"]]) == 30


def test_min_on_strings_falls_back_lexicographic():
    assert call_function("min", [["b", "a"]]) == "a"


def test_min_empty_is_null():
    assert call_function("min", [[]]) is NULL
    assert call_function("avg", [[]]) is NULL


def test_avg():
    assert call_function("avg", [[1, 2, 3]]) == 2


def test_aggregates_atomize_nodes():
    nodes = [element("p", "10.5"), element("p", "9.5")]
    assert call_function("min", [nodes]) == 9.5


def test_aggregate_over_single_attr_tuples():
    rows = [Tup({"c": "3"}), Tup({"c": "1"})]
    assert call_function("min", [rows]) == 1


def test_empty_exists():
    assert call_function("empty", [[]])
    assert not call_function("empty", [[1]])
    assert call_function("exists", [[1]])
    assert not call_function("exists", [[]])


def test_not_boolean():
    assert call_function("not", [[]])
    assert not call_function("not", [[1]])
    assert call_function("boolean", ["x"])


def test_decimal():
    assert call_function("decimal", [element("p", "65.95")]) == 65.95
    assert call_function("decimal", [["42"]]) == 42.0
    with pytest.raises(EvaluationError):
        call_function("decimal", [[]])
    with pytest.raises(EvaluationError):
        call_function("decimal", [["not-a-number"]])


def test_string():
    assert call_function("string", [element("t", "x")]) == "x"
    assert call_function("string", [[]]) == ""
    assert call_function("string", [42]) == "42"


def test_contains():
    assert call_function("contains", [element("a", "Dan Suciu"), "Suciu"])
    assert not call_function("contains", [["abc"], "z"])
    assert not call_function("contains", [[], "z"])
    with pytest.raises(EvaluationError):
        call_function("contains", [["a"]])


def test_starts_with():
    assert call_function("starts-with", ["hello", "he"])
    assert not call_function("starts-with", ["hello", "lo"])


def test_concat_and_length():
    assert call_function("concat", ["a", element("b", "c"), 1]) == "ac1"
    assert call_function("string-length", ["abcd"]) == 4


def test_distinct_values_first_occurrence_order():
    values = ["b", "a", "b", "c", "a"]
    assert call_function("distinct-values", [values]) == ["b", "a", "c"]


def test_distinct_values_atomizes_and_coerces():
    values = [element("x", "1"), "1", "2"]
    assert call_function("distinct-values", [values]) == ["1", "2"]


def test_distinct_values_idempotent():
    values = ["b", "a", "b"]
    once = call_function("distinct-values", [values])
    assert call_function("distinct-values", [once]) == once


def test_name_and_data():
    node = element("title", "T")
    assert call_function("name", [node]) == "title"
    assert call_function("data", [[node, "x"]]) == ["T", "x"]


def test_zero_or_one():
    assert call_function("zero-or-one", [["a"]]) == "a"
    assert call_function("zero-or-one", [[]]) is NULL
    with pytest.raises(EvaluationError):
        call_function("zero-or-one", [[1, 2]])


def test_unknown_function():
    with pytest.raises(EvaluationError, match="unknown function"):
        call_function("frobnicate", [[]])


def test_true_false():
    assert call_function("true", []) is True
    assert call_function("false", []) is False


# ---------------------------------------------------------------------------
# Extended string/number library (beyond the paper's queries)
# ---------------------------------------------------------------------------

def test_ends_with():
    assert call_function("ends-with", ["database", "base"]) is True
    assert call_function("ends-with", ["database", "data"]) is False
    assert call_function("ends-with", [[], "x"]) is False


def test_substring_two_args():
    assert call_function("substring", ["motor car", 6]) == " car"


def test_substring_three_args():
    assert call_function("substring", ["metadata", 4, 3]) == "ada"


def test_substring_start_before_string():
    assert call_function("substring", ["abcde", 0, 3]) == "ab"


def test_substring_wrong_arity():
    with pytest.raises(EvaluationError):
        call_function("substring", ["abc"])


def test_substring_before_after():
    assert call_function("substring-before", ["a=b", "="]) == "a"
    assert call_function("substring-after", ["a=b", "="]) == "b"
    assert call_function("substring-before", ["ab", "="]) == ""
    assert call_function("substring-after", ["ab", "="]) == ""


def test_case_functions():
    assert call_function("upper-case", ["MiXeD"]) == "MIXED"
    assert call_function("lower-case", ["MiXeD"]) == "mixed"


def test_normalize_space():
    assert call_function("normalize-space", ["  a \t b\n c "]) == "a b c"


def test_string_join():
    assert call_function("string-join", [["a", "b", "c"], "-"]) == "a-b-c"
    assert call_function("string-join", [[], "-"]) == ""


def test_string_join_atomizes_nodes():
    nodes = [element("x", "1"), element("x", "2")]
    assert call_function("string-join", [nodes, ","]) == "1,2"


def test_abs():
    assert call_function("abs", [-3.5]) == 3.5
    assert call_function("abs", ["4"]) == 4.0


def test_round_half_away_from_zero():
    assert call_function("round", [2.5]) == 3
    assert call_function("round", [-2.5]) == -3
    assert call_function("round", [2.4]) == 2


def test_floor_ceiling():
    assert call_function("floor", [2.7]) == 2.0
    assert call_function("ceiling", [2.1]) == 3.0
    assert call_function("floor", [-2.1]) == -3.0
    assert call_function("ceiling", [-2.1]) == -2.0
