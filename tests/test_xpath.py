"""XPath parsing and evaluation (document order, dedup, scan stats)."""

import pytest

from repro.errors import XPathError
from repro.xmldb.document import DocumentStore, ScanStats
from repro.xmldb.parser import parse_document
from repro.xpath.ast import (
    ComparisonPredicate,
    OpaquePredicate,
    Path,
    PathPredicate,
    Step,
    NameTest,
)
from repro.xpath.evaluator import evaluate_path
from repro.xpath.parser import parse_path

DOC = """
<bib>
  <book year="1994"><title>A</title><author><last>L1</last></author></book>
  <book year="2000"><title>B</title>
    <author><last>L2</last></author>
    <author><last>L1</last></author>
  </book>
  <book year="1990"><title>C</title><editor><last>L3</last></editor></book>
</bib>
"""


@pytest.fixture
def store():
    s = DocumentStore()
    s.register_text("bib.xml", DOC)
    return s


@pytest.fixture
def root(store):
    return store.get("bib.xml").root


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def test_parse_descendant_child():
    path = parse_path("//book/title")
    assert path.absolute
    assert [s.axis for s in path.steps] == ["descendant", "child"]
    assert str(path) == "//book/title"


def test_parse_attribute_step():
    path = parse_path("book/@year")
    assert path.steps[1].axis == "attribute"


def test_parse_predicates():
    path = parse_path("book[author]")
    assert isinstance(path.steps[0].predicates[0], PathPredicate)
    path = parse_path("book[@year > 1993]")
    pred = path.steps[0].predicates[0]
    assert isinstance(pred, ComparisonPredicate)
    assert pred.op == ">"
    assert pred.value == 1993


def test_parse_string_literal_predicate():
    path = parse_path("entry[title = 'A']")
    pred = path.steps[0].predicates[0]
    assert pred.value == "A"


def test_parse_rejects_garbage():
    with pytest.raises(XPathError):
        parse_path("//")
    with pytest.raises(XPathError):
        parse_path("a[b =]")
    with pytest.raises(XPathError):
        parse_path("")


def test_simple_steps_conversion():
    assert parse_path("//book/title").simple_steps() == [
        ("descendant", "book"), ("child", "title")]
    assert parse_path("//*").simple_steps() is None


# ----------------------------------------------------------------------
# Evaluator
# ----------------------------------------------------------------------
def test_descendant_finds_all(root):
    books = evaluate_path(root, parse_path("//book"))
    assert len(books) == 3


def test_child_step(root):
    titles = evaluate_path(root, parse_path("book/title"))
    assert [t.string_value() for t in titles] == ["A", "B", "C"]


def test_document_order_and_dedup(root):
    # //author from multiple contexts must not duplicate or reorder.
    books = evaluate_path(root, parse_path("//book"))
    authors = evaluate_path(books + books, parse_path("author"))
    assert [a.string_value() for a in authors] == ["L1", "L2", "L1"]


def test_attribute_axis(root):
    years = evaluate_path(root, parse_path("//book/@year"))
    assert [y.string_value() for y in years] == ["1994", "2000", "1990"]


def test_path_predicate(root):
    with_authors = evaluate_path(root, parse_path("//book[author]"))
    assert len(with_authors) == 2


def test_comparison_predicate_numeric(root):
    recent = evaluate_path(root, parse_path("//book[@year > 1993]"))
    assert len(recent) == 2


def test_comparison_predicate_string(root):
    named = evaluate_path(root, parse_path("//book[title = 'B']"))
    assert len(named) == 1
    assert named[0].attribute("year").text == "2000"


def test_text_test(root):
    texts = evaluate_path(root, parse_path("//title/text()"))
    assert [t.text for t in texts] == ["A", "B", "C"]


def test_wildcard(root):
    children = evaluate_path(root, parse_path("book/*"))
    names = {c.name for c in children}
    assert names == {"title", "author", "editor"}


def test_opaque_predicate_raises(root):
    path = Path((Step("descendant", NameTest("book"),
                      (OpaquePredicate("$x = 1"),)),), absolute=True)
    with pytest.raises(XPathError):
        evaluate_path(root, path)


def test_scan_stats_descendant(root, store):
    stats = ScanStats()
    evaluate_path(root, parse_path("//book"), stats=stats)
    assert stats.document_scans == {"bib.xml": 1}
    evaluate_path(root, parse_path("//book"), stats=stats)
    assert stats.document_scans == {"bib.xml": 2}


def test_scan_stats_child_from_root(root):
    stats = ScanStats()
    evaluate_path(root, parse_path("book"), stats=stats)
    assert stats.document_scans == {"bib.xml": 1}


def test_inner_child_steps_not_scans(root):
    stats = ScanStats()
    books = evaluate_path(root, parse_path("//book"), stats=stats)
    evaluate_path(books, parse_path("title"), stats=stats)
    assert stats.total_scans == 1  # only the descendant walk
    assert stats.node_visits > 0
