"""Unit tests for the observability primitives (repro.obs)."""

import json

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer, maybe_span


# ----------------------------------------------------------------------
# Spans and tracer
# ----------------------------------------------------------------------
def test_span_finish_and_duration():
    span = Span("work", "test", start=10.0)
    assert span.duration == 0.0          # still open
    span.finish(10.5)
    assert span.duration == 0.5


def test_tracer_begin_and_context_manager():
    tracer = Tracer()
    outer = tracer.begin("outer", "cat", key="value")
    with tracer.span("inner", "cat") as inner:
        assert inner.end is None
    outer.finish()
    assert [s.name for s in tracer.spans] == ["outer", "inner"]
    assert tracer.spans[0].args == {"key": "value"}
    assert all(s.end is not None for s in tracer.spans)


def test_instant_span_has_zero_duration():
    tracer = Tracer()
    span = tracer.instant("decision", "optimize", chosen="grouping")
    assert span.end == span.start
    assert span.duration == 0.0


def test_nested_depth_is_derived_from_containment():
    tracer = Tracer()
    a = Span("a", start=0.0)
    a.finish(10.0)
    b = Span("b", start=1.0)
    b.finish(5.0)
    c = Span("c", start=2.0)
    c.finish(3.0)
    d = Span("d", start=6.0)     # sibling of b, still inside a
    d.finish(7.0)
    e = Span("e", start=11.0)    # after a closed: top level again
    e.finish(12.0)
    tracer.spans.extend([a, b, c, d, e])
    assert [(depth, s.name) for depth, s in tracer.nested()] == [
        (0, "a"), (1, "b"), (2, "c"), (1, "d"), (0, "e")]


def test_nested_handles_interleaved_generator_lifetimes():
    # The pipelined engine produces spans that overlap without strict
    # nesting (parent opens first, closes last; children interleave).
    tracer = Tracer()
    parent = Span("parent", start=0.0)
    parent.finish(10.0)
    first = Span("first", start=1.0)
    first.finish(9.0)
    second = Span("second", start=2.0)
    second.finish(8.0)
    tracer.spans.extend([parent, first, second])
    assert [(d, s.name) for d, s in tracer.nested()] == [
        (0, "parent"), (1, "first"), (2, "second")]


def test_chrome_trace_events_are_complete_and_in_microseconds():
    tracer = Tracer()
    tracer.origin = 0.0
    span = Span("op", "operator", {"path": [0]}, start=0.001)
    span.finish(0.003)
    tracer.spans.append(span)
    payload = tracer.to_chrome_trace()
    assert payload["displayTimeUnit"] == "ms"
    (event,) = payload["traceEvents"]
    assert event["ph"] == "X"
    assert event["pid"] == 1 and event["tid"] == 1
    assert abs(event["ts"] - 1000.0) < 1e-6
    assert abs(event["dur"] - 2000.0) < 1e-6
    assert event["args"] == {"path": [0]}


def test_chrome_trace_clamps_open_spans():
    tracer = Tracer()
    tracer.origin = 0.0
    open_span = Span("open", start=1.0)          # never finished
    closed = Span("closed", start=0.0)
    closed.finish(5.0)
    tracer.spans.extend([open_span, closed])
    events = {e["name"]: e for e in
              tracer.to_chrome_trace()["traceEvents"]}
    assert events["open"]["dur"] == (5.0 - 1.0) * 1e6


def test_chrome_json_round_trips():
    tracer = Tracer()
    with tracer.span("stage", "compile", chars=42):
        pass
    parsed = json.loads(tracer.chrome_json())
    assert parsed["traceEvents"][0]["name"] == "stage"
    assert parsed["traceEvents"][0]["args"] == {"chars": 42}


def test_to_pretty_indents_and_filters():
    tracer = Tracer()
    a = Span("outer", start=0.0)
    a.finish(1.0)
    b = Span("blink", start=0.1)
    b.finish(0.1001)
    tracer.spans.extend([a, b])
    text = tracer.to_pretty()
    assert "outer" in text and "  blink" in text
    assert "blink" not in tracer.to_pretty(min_duration=0.01)


def test_maybe_span_is_noop_without_tracer():
    with maybe_span(None, "anything") as span:
        assert span is None
    tracer = Tracer()
    with maybe_span(tracer, "real", "cat") as span:
        assert span is not None
    assert tracer.spans[0].name == "real"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_counter_and_gauge():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge()
    assert gauge.value is None
    gauge.set(1.5)
    gauge.set(2.5)
    assert gauge.value == 2.5


def test_histogram_nearest_rank_percentiles_are_exact():
    histogram = Histogram()
    for value in range(1, 101):      # 1..100
        histogram.observe(float(value))
    assert histogram.percentile(50) == 50.0
    assert histogram.percentile(95) == 95.0
    assert histogram.percentile(99) == 99.0
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0


def test_histogram_single_value_and_empty():
    histogram = Histogram()
    assert histogram.percentile(50) is None
    assert histogram.snapshot()["count"] == 0
    histogram.observe(3.0)
    snap = histogram.snapshot()
    assert snap == {"count": 1, "sum": 3.0, "min": 3.0, "max": 3.0,
                    "p50": 3.0, "p95": 3.0, "p99": 3.0}


def test_registry_instruments_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    registry.counter("a").inc(2)
    registry.gauge("g").set(7)
    registry.histogram("h").observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 2}
    assert snap["gauges"] == {"g": 7}
    assert snap["histograms"]["h"]["count"] == 1
    text = registry.to_pretty()
    assert "a" in text and "n=1" in text
