"""Tests for the benchmark harness (repro.bench) at tiny scales."""

from __future__ import annotations

import pytest

from repro.bench import PAPER_QUERIES, make_database, measure_query
from repro.bench.harness import time_plan
from repro.bench.tables import (
    PAPER_RESULTS,
    all_tables,
    dblp_table,
    document_size_table,
    paper_table_string,
    query_table,
)


def test_every_query_compiles_and_all_plans_agree():
    """For every §5 experiment the plan set includes the paper's labels
    and every plan produces the same rows (up to group order)."""
    from tests.conftest import output_blocks
    for key, spec in PAPER_QUERIES.items():
        params = {"books": 12} if key != "q6" else {"bids": 20}
        if key == "q1_dblp":
            params = {"books": 8, "articles": 16}
        measured = measure_query(key, **params)
        labels = [m.label for m in measured]
        assert list(spec.plan_labels) == labels, key
        outputs = {m.label: output_blocks(m.output) for m in measured}
        reference = outputs[labels[0]]
        for label, blocks in outputs.items():
            assert blocks == reference, f"{key}: {label} differs"


def test_nested_plan_scans_grow_with_input():
    small = measure_query("q3", labels=("nested",), books=10)[0]
    large = measure_query("q3", labels=("nested",), books=30)[0]
    assert large.total_scans > small.total_scans


def test_unnested_plan_scans_constant():
    small = measure_query("q3", labels=("semijoin",), books=10)[0]
    large = measure_query("q3", labels=("semijoin",), books=30)[0]
    assert small.total_scans == large.total_scans == 2


def test_measured_plan_records_applied_rules():
    plan = measure_query("q5", labels=("grouping",), books=10)[0]
    assert "eqv9" in plan.applied


def test_make_database_registers_expected_documents():
    db = make_database("q3", books=5)
    assert "bib.xml" in db.store and "reviews.xml" in db.store
    db6 = make_database("q6", bids=10)
    assert "bids.xml" in db6.store


def test_time_plan_returns_positive_seconds():
    db = make_database("q2", books=5)
    from repro.api import compile_query
    query = compile_query(PAPER_QUERIES["q2"].text, db)
    seconds = time_plan(db, query.best().plan, repeat=2)
    assert seconds > 0


# ---------------------------------------------------------------------------
# Table formatting
# ---------------------------------------------------------------------------

def test_document_size_table_mentions_all_documents():
    table = document_size_table(sizes=(20,))
    for name in ("bib", "prices", "reviews", "bids", "items", "users"):
        assert name in table
    assert "KB" in table


def test_query_table_has_row_per_plan():
    table = query_table("q2", sizes=(10, 20))
    assert len(table.rows) == len(PAPER_QUERIES["q2"].plan_labels)
    text = table.to_string()
    assert "nested" in text and "grouping" in text
    assert "§5.2" in text


def test_query_table_q1_varies_authors():
    table = query_table("q1", sizes=(8,))
    # 4 plans × 3 authors-per-book values
    assert len(table.rows) == 12
    assert table.extra_param == "authors"


def test_paper_table_string_covers_all_plans():
    for key, ref in PAPER_RESULTS.items():
        text = paper_table_string(key)
        for label in ref["plans"]:
            assert label in text, (key, label)


def test_dblp_table_mentions_refusal():
    text = dblp_table(books=8, articles=16)
    assert "outerjoin" in text
    assert "Eqv. 5" in text


@pytest.mark.slow
def test_all_tables_smoke():
    report = all_tables(sizes=(8, 16), keys=("q2", "q6"))
    assert "Fig. 6" in report
    assert "§5.2" in report and "§5.6" in report


# ---------------------------------------------------------------------------
# Machine-readable (JSON) results
# ---------------------------------------------------------------------------

def test_measurements_to_json_roundtrips(tmp_path):
    import json

    from repro.bench.harness import measurements_to_json, write_json
    measured = {"q3": query_table("q3", sizes=(8,)).to_measurements()}
    payload = measurements_to_json(measured, meta={"sizes": [8]})
    assert payload["schema"] == "repro-bench/1"
    records = payload["queries"]["q3"]
    assert {r["label"] for r in records} == {"nested", "semijoin"}
    for record in records:
        assert record["seconds"] > 0
        assert record["params"] == "books=8"
        assert "total_scans" in record and "total_probes" in record
        assert "output_chars" in record and "output" not in record
    out = tmp_path / "bench.json"
    write_json(str(out), payload)
    assert json.loads(out.read_text()) == json.loads(
        json.dumps(payload))


def test_bench_cli_writes_json(tmp_path):
    from repro.bench.__main__ import main
    out = tmp_path / "out.json"
    code = main(["--sizes", "8", "--query", "q3", "--no-paper",
                 "--json", str(out)])
    assert code == 0
    import json
    payload = json.loads(out.read_text())
    assert payload["meta"]["sizes"] == [8]
    assert "q3" in payload["queries"]
