"""Tests for plan rendering (tree, compact, EXPLAIN, and DOT)."""

from __future__ import annotations

from repro import Database, compile_query
from repro.datagen import BIB_DTD, generate_bib
from repro.nal.pretty import explain, plan_to_dot, plan_to_string
from repro.nal.scalar import AttrRef, Comparison
from repro.nal.unary_ops import Select, Table

NESTED_QUERY = '''
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name> { $a1 } </name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2/book[$a1 = author]
    return $b2/title }
  </author>
'''


def _query():
    db = Database()
    db.register_tree("bib.xml", generate_bib(4, 2, seed=1),
                     dtd_text=BIB_DTD)
    return compile_query(NESTED_QUERY, db)


def test_tree_rendering_shows_nested_marker():
    text = plan_to_string(_query().plan)
    assert "⟨nested⟩" in text
    assert "Υ" in text and "χ" in text


def test_unnested_plan_has_no_nested_marker():
    query = _query()
    best = query.best()
    assert "⟨nested⟩" not in plan_to_string(best.plan)


def test_compact_rendering_is_one_line():
    table = Table("T", ["a"], [{"a": 1}])
    plan = Select(table, Comparison(AttrRef("a"), ">", AttrRef("a")))
    compact = plan_to_string(plan, compact=True)
    assert "\n" not in compact
    assert compact.startswith("σ")


def test_explain_has_header():
    assert explain(_query().plan).startswith("Plan\n----\n")


def test_dot_output_is_a_digraph():
    dot = plan_to_dot(_query().plan)
    assert dot.startswith("digraph plan {")
    assert dot.rstrip().endswith("}")
    assert "->" in dot


def test_dot_marks_nested_cluster():
    dot = plan_to_dot(_query().plan)
    assert "cluster_" in dot
    assert "style=dashed" in dot


def test_dot_unnested_plan_has_no_cluster():
    dot = plan_to_dot(_query().best().plan)
    assert "cluster_" not in dot


def test_dot_escapes_quotes():
    dot = plan_to_dot(_query().plan)
    # doc("bib.xml") appears in labels; quotes must be escaped
    assert '\\"bib.xml\\"' in dot


def test_dot_node_count_matches_operators():
    table = Table("T", ["a"], [{"a": 1}])
    plan = Select(table, Comparison(AttrRef("a"), ">", AttrRef("a")))
    dot = plan_to_dot(plan)
    assert dot.count("[label=") == 2
