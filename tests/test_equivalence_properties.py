"""Property-based tests mechanizing Appendix A.

For every unnesting equivalence we generate random relations (and random
parameters satisfying the side conditions) and check that the left- and
right-hand sides produce identical sequences — order included, since the
paper's whole point is order preservation.  We additionally check
reference ≡ physical on every generated plan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.context import EvalContext
from repro.engine.physical import run_physical
from repro.nal import (
    AggSpec,
    AntiJoin,
    GroupBinary,
    GroupUnary,
    Map,
    OuterJoin,
    Project,
    ProjectAway,
    Rename,
    Select,
    SelfGroup,
    SemiJoin,
    Table,
    Tup,
    Unnest,
)
from repro.nal.scalar import (
    AttrRef,
    Comparison,
    Const,
    Exists,
    Forall,
    FuncCall,
    In,
    NestedPlan,
    TRUE,
)
from repro.xmldb.document import DocumentStore

THETAS = ["=", "!=", "<", "<=", ">", ">="]

values = st.integers(min_value=0, max_value=5)


@st.composite
def r1_tables(draw):
    rows = draw(st.lists(values, max_size=6))
    return Table("E1", ["A1"], [{"A1": v} for v in rows])


@st.composite
def r2_tables(draw):
    rows = draw(st.lists(st.tuples(values, values), max_size=6))
    return Table("E2", ["A2", "B"],
                 [{"A2": a, "B": b} for a, b in rows])


@st.composite
def nested_r2_tables(draw):
    """e2 with a sequence-valued attribute a2 of tuples [v: int]."""
    rows = draw(st.lists(st.lists(values, max_size=3), max_size=5))
    return Table("E2", ["a2", "B"], [
        {"a2": [Tup({"v": v}) for v in seq], "B": i}
        for i, seq in enumerate(rows)])


aggs = st.sampled_from([
    AggSpec("count"),
    AggSpec("id"),
    AggSpec("sum", "B"),
    AggSpec("min", "B"),
    AggSpec("project", "B"),
])

thetas = st.sampled_from(THETAS)


def evaluate(plan):
    ctx = EvalContext(DocumentStore())
    reference = plan.evaluate(ctx)
    physical = run_physical(plan, ctx)
    assert physical == reference, "physical engine diverged from reference"
    return reference


def agg_as_scalar(agg: AggSpec, inner_plan) -> object:
    """Rebuild the χ subscript f(σ...(e2)) for a given AggSpec."""
    if agg.kind == "id":
        return NestedPlan(inner_plan)
    if agg.kind == "project":
        return NestedPlan(Project(inner_plan, [agg.attr]))
    if agg.kind == "count":
        return FuncCall("count", [NestedPlan(inner_plan)])
    return FuncCall(agg.kind, [NestedPlan(Project(inner_plan,
                                                  [agg.attr]))])


# ----------------------------------------------------------------------
# Eqv. 1: χ_{g:f(σ_{A1θA2}(e2))}(e1) = e1 Γ_{g;A1θA2;f} e2
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(e1=r1_tables(), e2=r2_tables(), theta=thetas, agg=aggs)
def test_eqv1(e1, e2, theta, agg):
    corr = Comparison(AttrRef("A1"), theta, AttrRef("A2"))
    lhs = Map(e1, "g", agg_as_scalar(agg, Select(e2, corr)))
    rhs = GroupBinary(e1, e2, "g", ["A1"], theta, ["A2"], agg)
    assert evaluate(lhs) == evaluate(rhs)


# ----------------------------------------------------------------------
# Eqv. 2: equality case via outer join + unary Γ
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(e1=r1_tables(), e2=r2_tables(), agg=aggs)
def test_eqv2(e1, e2, agg):
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    lhs = Map(e1, "g", agg_as_scalar(agg, Select(e2, corr)))
    grouped = GroupUnary(e2, "g", ["A2"], "=", agg)
    rhs = ProjectAway(
        OuterJoin(e1, grouped, corr, "g", Const(agg.empty_value())),
        ["A2"])
    assert evaluate(lhs) == evaluate(rhs)


# ----------------------------------------------------------------------
# Eqv. 3: e1 = ΠD_{A1:A2}(Π_{A2}(e2)) — we *construct* e1 that way
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(e2=r2_tables(), theta=thetas, agg=aggs)
def test_eqv3(e2, theta, agg):
    e1 = DistinctOf(e2)
    corr = Comparison(AttrRef("A1"), theta, AttrRef("A2"))
    lhs = Map(e1, "g", agg_as_scalar(agg, Select(e2, corr)))
    rhs = Rename(GroupUnary(e2, "g", ["A2"], theta, agg), {"A2": "A1"})
    assert evaluate(lhs) == evaluate(rhs)


def DistinctOf(e2: Table) -> Table:
    """Materialized ΠD_{A1:A2}(Π_{A2}(e2)) with deterministic
    first-occurrence order (what the condition of Eqv. 3 requires)."""
    seen, rows = set(), []
    for row in e2.rows:
        if row["A2"] not in seen:
            seen.add(row["A2"])
            rows.append({"A1": row["A2"]})
    return Table("E1", ["A1"], rows)


# ----------------------------------------------------------------------
# Eqv. 4: membership correlation via µD + outer join
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(e1=r1_tables(), e2=nested_r2_tables(),
       agg=st.sampled_from([AggSpec("count"), AggSpec("sum", "B"),
                            AggSpec("project", "B"), AggSpec("min", "B")]))
def test_eqv4(e1, e2, agg):
    lhs = Map(e1, "g", agg_as_scalar(
        agg, Select(e2, In(AttrRef("A1"), AttrRef("a2")))))
    unnested = Unnest(e2, "a2", ["v"], dedup=True)
    grouped = GroupUnary(unnested, "g", ["v"], "=", agg)
    rhs = ProjectAway(
        OuterJoin(e1, grouped,
                  Comparison(AttrRef("A1"), "=", AttrRef("v")), "g",
                  Const(agg.empty_value())),
        ["v"])
    assert evaluate(lhs) == evaluate(rhs)


# ----------------------------------------------------------------------
# Eqv. 5: membership + the distinct-projection condition
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(e2=nested_r2_tables(),
       agg=st.sampled_from([AggSpec("count"), AggSpec("sum", "B"),
                            AggSpec("project", "B")]))
def test_eqv5(e2, agg):
    e1 = DistinctOfUnnested(e2)
    lhs = Map(e1, "g", agg_as_scalar(
        agg, Select(e2, In(AttrRef("A1"), AttrRef("a2")))))
    unnested = Unnest(e2, "a2", ["v"], dedup=True)
    rhs = Rename(GroupUnary(unnested, "g", ["v"], "=", agg),
                 {"v": "A1"})
    assert evaluate(lhs) == evaluate(rhs)


def DistinctOfUnnested(e2: Table) -> Table:
    """ΠD_{A1:A2}(Π_{A2}(µ_{a2}(e2)))."""
    seen, rows = set(), []
    for row in e2.rows:
        for item in row["a2"]:
            if item["v"] not in seen:
                seen.add(item["v"])
                rows.append({"A1": item["v"]})
    return Table("E1", ["A1"], rows)


# ----------------------------------------------------------------------
# Eqvs. 6/7: quantifiers to semijoin / antijoin
# ----------------------------------------------------------------------
quant_preds = st.sampled_from([
    TRUE,
    Comparison(AttrRef("x"), ">", Const(2)),
    Comparison(AttrRef("x"), "=", Const(3)),
])


@settings(max_examples=120, deadline=None)
@given(e1=r1_tables(), e2=r2_tables(), pred=quant_preds)
def test_eqv6(e1, e2, pred):
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    lhs = Select(e1, Exists(
        "x", NestedPlan(Project(Select(e2, corr), ["B"])), pred))
    from repro.nal.scalar import make_conjunction, rename_attrs
    p_prime = rename_attrs(pred, {"x": "B"})
    parts = [corr] if p_prime == TRUE else [corr, p_prime]
    rhs = SemiJoin(e1, e2, make_conjunction(parts))
    assert evaluate(lhs) == evaluate(rhs)


@settings(max_examples=120, deadline=None)
@given(e1=r1_tables(), e2=r2_tables(), pred=quant_preds)
def test_eqv7(e1, e2, pred):
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    lhs = Select(e1, Forall(
        "x", NestedPlan(Project(Select(e2, corr), ["B"])), pred))
    from repro.nal.scalar import make_conjunction, negate, rename_attrs
    rhs = AntiJoin(e1, e2, make_conjunction(
        [corr, negate(rename_attrs(pred, {"x": "B"}))]))
    assert evaluate(lhs) == evaluate(rhs)


# ----------------------------------------------------------------------
# Eqvs. 8/9: semijoin/antijoin to counting grouping
# ----------------------------------------------------------------------
filters = st.sampled_from([
    None,
    Comparison(AttrRef("B"), ">", Const(2)),
    Comparison(AttrRef("B"), "=", Const(4)),
])


@settings(max_examples=120, deadline=None)
@given(e2=r2_tables(), filter_pred=filters)
def test_eqv8(e2, filter_pred):
    e1 = DistinctOf(e2)
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    right = e2 if filter_pred is None else Select(e2, filter_pred)
    lhs = SemiJoin(e1, right, corr)
    grouped = GroupUnary(e2, "c", ["A2"], "=",
                         AggSpec("count", filter_pred=filter_pred))
    rhs = Select(Rename(grouped, {"A2": "A1"}),
                 Comparison(AttrRef("c"), ">", Const(0)))
    assert evaluate(lhs) == [t.project(["A1"])
                             for t in evaluate(rhs)]


@settings(max_examples=120, deadline=None)
@given(e2=r2_tables(), filter_pred=filters)
def test_eqv9(e2, filter_pred):
    e1 = DistinctOf(e2)
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    right = e2 if filter_pred is None else Select(e2, filter_pred)
    lhs = AntiJoin(e1, right, corr)
    grouped = GroupUnary(e2, "c", ["A2"], "=",
                         AggSpec("count", filter_pred=filter_pred))
    rhs = Select(Rename(grouped, {"A2": "A1"}),
                 Comparison(AttrRef("c"), "=", Const(0)))
    assert evaluate(lhs) == [t.project(["A1"])
                             for t in evaluate(rhs)]


# ----------------------------------------------------------------------
# The §5.4 self-grouping rewrite
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(e2=r2_tables(), filter_pred=filters)
def test_self_group_equiv(e2, filter_pred):
    e1 = Table("E1", ["A1", "C"],
               [{"A1": r["A2"], "C": r["B"]} for r in e2.rows])
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    right = e2 if filter_pred is None else Select(e2, filter_pred)
    lhs = SemiJoin(e1, right, corr)
    from repro.nal.scalar import rename_attrs
    renamed = None if filter_pred is None else \
        rename_attrs(filter_pred, {"A2": "A1", "B": "C"})
    rhs = Select(SelfGroup(e1, "n", ["A1"],
                           AggSpec("count", filter_pred=renamed)),
                 Comparison(AttrRef("n"), ">", Const(0)))
    assert evaluate(lhs) == [t.project(["A1", "C"])
                             for t in evaluate(rhs)]
