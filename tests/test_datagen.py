"""Tests for the document generators (the ToXgene stand-in).

Fig. 6 of the paper lists the serialized sizes of the generated
documents; we assert our generators land in the same ballpark and obey
the DTDs of Fig. 5.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    BIB_DTD,
    BIDS_DTD,
    DBLP_DTD,
    ITEMS_DTD,
    PRICES_DTD,
    REVIEWS_DTD,
    USERS_DTD,
    generate_bib,
    generate_bids,
    generate_dblp,
    generate_items,
    generate_prices,
    generate_reviews,
    generate_users,
)
from repro.datagen.xmp import book_titles
from repro.xmldb.dtd import parse_dtd
from repro.xmldb.node import NodeKind
from repro.xmldb.parser import parse_document
from repro.xmldb.serialize import serialize


def kb(root) -> float:
    return len(serialize(root).encode()) / 1024.0


# ---------------------------------------------------------------------------
# Fig. 6: document sizes (paper values at size 100: bib(2)=20.6KB,
# bib(5)=39.0KB, bib(10)=68.7KB, prices=10.7KB, reviews=20.8KB,
# bids=11.1KB, items=21.4KB(at 100 items), users=9.0KB).  Our word pools
# differ, so assert a generous ±60% band.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("apb,paper_kb", [(2, 20.6), (5, 39.0),
                                          (10, 68.7)])
def test_bib_size_matches_fig6(apb, paper_kb):
    size = kb(generate_bib(100, apb, seed=7))
    assert 0.4 * paper_kb <= size <= 1.6 * paper_kb


def test_prices_size_matches_fig6():
    assert 0.4 * 10.7 <= kb(generate_prices(100, seed=7)) <= 2.0 * 10.7


def test_bids_size_matches_fig6():
    assert 0.4 * 11.1 <= kb(generate_bids(100, seed=7)) <= 1.6 * 11.1


def test_users_size_matches_fig6():
    assert 0.4 * 9.0 <= kb(generate_users(100, seed=7)) <= 1.6 * 9.0


def test_sizes_scale_linearly():
    small = kb(generate_bib(100, 2, seed=7))
    large = kb(generate_bib(1000, 2, seed=7))
    assert 8 <= large / small <= 12


# ---------------------------------------------------------------------------
# Determinism and parameter effects
# ---------------------------------------------------------------------------

def test_generation_is_deterministic():
    a = serialize(generate_bib(50, 2, seed=13))
    b = serialize(generate_bib(50, 2, seed=13))
    assert a == b


def test_different_seeds_differ():
    a = serialize(generate_bib(50, 2, seed=1))
    b = serialize(generate_bib(50, 2, seed=2))
    assert a != b


def test_bib_book_and_author_counts():
    root = generate_bib(25, 3, seed=7)
    books = root.child_elements("book")
    assert len(books) == 25
    for book in books:
        assert len(book.child_elements("author")) == 3
        assert len(book.child_elements("title")) == 1
        assert book.attribute("year") is not None


def test_bib_year_range():
    root = generate_bib(40, 2, seed=7, year_range=(1990, 1999))
    years = {int(b.attribute("year").string_value())
             for b in root.child_elements("book")}
    assert years and all(1990 <= y <= 1999 for y in years)


def test_titles_shared_across_xmp_documents():
    """reviews/prices must reuse bib's title population so the paper's
    joins find partners."""
    titles = set(book_titles(20, seed=7))
    prices = generate_prices(20, seed=7)
    price_titles = {b.child_elements("title")[0].string_value()
                    for b in prices.child_elements("book")}
    assert price_titles <= titles
    reviews = generate_reviews(10, seed=7)
    review_titles = {e.child_elements("title")[0].string_value()
                     for e in reviews.child_elements("entry")}
    assert review_titles <= titles


def test_bids_reference_existing_items():
    bids = generate_bids(60, items=12, seed=7)
    items = generate_items(12, seed=7)
    item_nos = {t.child_elements("itemno")[0].string_value()
                for t in items.child_elements("itemtuple")}
    for bid in bids.child_elements("bidtuple"):
        assert bid.child_elements("itemno")[0].string_value() in item_nos


def test_items_count_and_shape():
    items = generate_items(12, seed=7)
    tuples = items.child_elements("itemtuple")
    assert len(tuples) == 12
    for t in tuples:
        assert t.child_elements("itemno")
        assert t.child_elements("description")
        assert t.child_elements("offered_by")


def test_users_optional_rating():
    """The users DTD marks rating as optional; both shapes must occur."""
    users = generate_users(60, seed=7)
    with_rating = [u for u in users.child_elements("usertuple")
                   if u.child_elements("rating")]
    assert 0 < len(with_rating) < 60


def test_dblp_has_bookless_authors():
    """The schema property the §5.1 DBLP paragraph relies on: some
    authors appear only under articles."""
    root = generate_dblp(30, 90, seed=7)
    book_authors = set()
    all_authors = set()
    for child in root.child_elements():
        for author in child.child_elements("author"):
            all_authors.add(author.string_value())
            if child.name == "book":
                book_authors.add(author.string_value())
    assert all_authors - book_authors, "expected authors without books"


# ---------------------------------------------------------------------------
# DTD conformance of every generator
# ---------------------------------------------------------------------------

GENERATORS = [
    (lambda: generate_bib(15, 2, seed=5), BIB_DTD),
    (lambda: generate_reviews(10, seed=5), REVIEWS_DTD),
    (lambda: generate_prices(15, seed=5), PRICES_DTD),
    (lambda: generate_users(15, seed=5), USERS_DTD),
    (lambda: generate_items(10, seed=5), ITEMS_DTD),
    (lambda: generate_bids(20, items=5, seed=5), BIDS_DTD),
    (lambda: generate_dblp(10, 20, seed=5), DBLP_DTD),
]


@pytest.mark.parametrize("make,dtd_text",
                         GENERATORS,
                         ids=["bib", "reviews", "prices", "users",
                              "items", "bids", "dblp"])
def test_generated_document_conforms_to_dtd(make, dtd_text):
    """Every element used by a generated tree is declared in its DTD and
    only contains children the content model allows."""
    dtd = parse_dtd(dtd_text)
    root = make()
    for node in root.iter_descendants(include_self=True):
        if node.kind is not NodeKind.ELEMENT:
            continue
        assert node.name in dtd.elements, f"undeclared element {node.name}"
        allowed = dtd.child_tags(node.name)
        for child in node.child_elements():
            assert child.name in allowed, (
                f"{child.name} not allowed under {node.name}")


@pytest.mark.parametrize("make,dtd_text",
                         GENERATORS,
                         ids=["bib", "reviews", "prices", "users",
                              "items", "bids", "dblp"])
def test_generated_document_roundtrips(make, dtd_text):
    """serialize → parse → serialize is a fixpoint for generated trees."""
    text = serialize(make())
    doc_root = parse_document(text).root
    assert serialize(doc_root) == text
