"""Property test: parse ∘ serialize is the identity on parsed documents.

``parse(serialize(parse(x))) == parse(x)`` for generated documents
covering attribute escaping (quotes, ampersands, angle brackets),
mixed content (text interleaved with elements — adjacent text is
merged by the parser, so the comparison goes through a first parse to
canonicalize), and attribute order, which the parser and serializer
must both preserve.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldb.node import Node, NodeKind
from repro.xmldb.parser import parse_document
from repro.xmldb.serialize import serialize

NAMES = st.sampled_from(["a", "b", "item", "x1", "with-dash",
                         "with.dot", "_u"])
# Texts exercise the five predefined entities, both quote kinds and
# whitespace; excluded: the empty string (empty text nodes are dropped
# on serialization, which is a normalization, not a round-trip bug).
TEXT_ALPHABET = ("abcXYZ012 &<>\"'\n\t"
                 "äπ—")
TEXTS = st.text(alphabet=TEXT_ALPHABET, min_size=1, max_size=12)
ATTR_VALUES = st.text(alphabet=TEXT_ALPHABET, max_size=12)


@st.composite
def trees(draw, depth: int = 3) -> Node:
    node = Node(NodeKind.ELEMENT, name=draw(NAMES))
    for attr_name in draw(st.lists(NAMES, unique=True, max_size=3)):
        node.set_attribute(attr_name, draw(ATTR_VALUES))
    if depth > 0:
        children = draw(st.lists(
            st.one_of(TEXTS, trees(depth=depth - 1)), max_size=4))
        for child in children:
            if isinstance(child, str):
                node.append_child(Node(NodeKind.TEXT, text=child))
            else:
                node.append_child(child)
    return node


def equal_trees(left: Node, right: Node) -> bool:
    if left.kind is not right.kind or left.name != right.name \
            or left.text != right.text:
        return False
    left_attrs = [(a.name, a.text) for a in left.attributes]
    right_attrs = [(a.name, a.text) for a in right.attributes]
    if left_attrs != right_attrs:       # order-sensitive on purpose
        return False
    if len(left.children) != len(right.children):
        return False
    return all(equal_trees(lc, rc)
               for lc, rc in zip(left.children, right.children))


@settings(max_examples=120, deadline=None)
@given(trees())
def test_parse_serialize_roundtrip(tree):
    text = serialize(tree)
    first = parse_document(text).root
    second = parse_document(serialize(first)).root
    assert equal_trees(first, second)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(NAMES, ATTR_VALUES), unique_by=lambda t: t[0],
                min_size=2, max_size=5))
def test_attribute_order_preserved(attrs):
    node = Node(NodeKind.ELEMENT, name="e")
    for name, value in attrs:
        node.set_attribute(name, value)
    reparsed = parse_document(serialize(node)).root
    assert [(a.name, a.text) for a in reparsed.attributes] == attrs


def test_mixed_content_roundtrip():
    text = "<p>one <b>two</b> three<i/>tail &amp; more</p>"
    first = parse_document(text).root
    second = parse_document(serialize(first)).root
    assert equal_trees(first, second)
    assert first.string_value() == "one two threetail & more"


def test_attribute_escaping_roundtrip():
    node = Node(NodeKind.ELEMENT, name="e")
    node.set_attribute("q", 'he said "hi" & <left>')
    node.set_attribute("s", "it's fine")
    reparsed = parse_document(serialize(node)).root
    assert reparsed.attribute("q").text == 'he said "hi" & <left>'
    assert reparsed.attribute("s").text == "it's fine"
