"""Serialization round-trips and escaping."""

from repro.xmldb.node import element
from repro.xmldb.parser import parse_document
from repro.xmldb.serialize import serialize


def test_roundtrip_simple():
    text = "<a><b>x</b><c>y</c></a>"
    assert serialize(parse_document(text).root) == text


def test_roundtrip_attributes():
    text = '<a k="v"><b>x</b></a>'
    assert serialize(parse_document(text).root) == text


def test_escaping_text():
    root = element("a", "x < y & z")
    assert serialize(root) == "<a>x &lt; y &amp; z</a>"


def test_escaping_attribute():
    root = element("a", q='say "hi" & go')
    assert serialize(root) == '<a q="say &quot;hi&quot; &amp; go"/>'


def test_empty_element_self_closes():
    assert serialize(element("a")) == "<a/>"


def test_pretty_print_indents():
    root = element("a", element("b", "x"), element("c"))
    pretty = serialize(root, indent=2)
    assert "\n  <b>x</b>\n" in pretty


def test_entity_roundtrip():
    text = "<a>x &amp; y</a>"
    root = parse_document(text).root
    assert serialize(root) == text


def test_builder_helper_shapes():
    book = element("book", element("title", "T"), year="1999")
    assert book.attribute("year").text == "1999"
    assert book.child_elements("title")[0].string_value() == "T"
