"""E7 — the paper's worked examples, asserted tuple-for-tuple.

Fig. 1: the map operator χ_{a:σ_{A1=A2}(R2)}(R1).
Fig. 2: unary Γ with count and id, binary Γ (nest-join) with the empty
group for A1=3, and µ_g(R2^g) = R2.
"""

from __future__ import annotations

import pytest

from repro.engine.context import EvalContext
from repro.engine.physical import run_physical
from repro.nal import (
    AggSpec,
    GroupBinary,
    GroupUnary,
    Map,
    Table,
    Tup,
    Unnest,
)
from repro.nal.scalar import AttrRef, Comparison, NestedPlan
from repro.nal.unary_ops import Select
from repro.xmldb.document import DocumentStore


@pytest.fixture
def r1() -> Table:
    return Table("R1", ["A1"], [{"A1": 1}, {"A1": 2}, {"A1": 3}])


@pytest.fixture
def r2() -> Table:
    return Table("R2", ["A2", "B"], [
        {"A2": 1, "B": 2},
        {"A2": 1, "B": 3},
        {"A2": 2, "B": 4},
        {"A2": 2, "B": 5},
    ])


def rows(plan) -> list[Tup]:
    ctx = EvalContext(DocumentStore())
    reference = plan.evaluate(ctx)
    assert run_physical(plan, ctx) == reference
    return reference


def tup(**attrs) -> Tup:
    return Tup(attrs)


def test_fig1_map_operator(r1, r2):
    """χ_{a:σ_{A1=A2}(R2)}(R1) — three tuples, the third with an empty
    sequence."""
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    plan = Map(r1, "a", NestedPlan(Select(r2, corr)))
    result = rows(plan)
    assert len(result) == 3
    assert result[0]["A1"] == 1
    assert result[0]["a"] == [tup(A2=1, B=2), tup(A2=1, B=3)]
    assert result[1]["a"] == [tup(A2=2, B=4), tup(A2=2, B=5)]
    assert result[2]["A1"] == 3
    assert result[2]["a"] == []


def test_fig2_unary_gamma_count(r2):
    """Γ_{g;=A2;count}(R2) = {(1,2), (2,2)}."""
    plan = GroupUnary(r2, "g", ["A2"], "=", AggSpec("count"))
    assert rows(plan) == [tup(A2=1, g=2), tup(A2=2, g=2)]


def test_fig2_unary_gamma_id(r2):
    """Γ_{g;=A2;id}(R2): the groups as sequence-valued attributes."""
    plan = GroupUnary(r2, "g", ["A2"], "=", AggSpec("id"))
    result = rows(plan)
    assert [t["A2"] for t in result] == [1, 2]
    assert result[0]["g"] == [tup(A2=1, B=2), tup(A2=1, B=3)]
    assert result[1]["g"] == [tup(A2=2, B=4), tup(A2=2, B=5)]


def test_fig2_binary_gamma_keeps_empty_group(r1, r2):
    """R1 Γ_{g;A1=A2;id} R2: A1=3 keeps an empty group — the fact that
    makes the binary operator (not the unary one) the correct rewrite
    when the outer sequence has unmatched values."""
    plan = GroupBinary(r1, r2, "g", ["A1"], "=", ["A2"], AggSpec("id"))
    result = rows(plan)
    assert len(result) == 3
    assert result[0]["g"] == [tup(A2=1, B=2), tup(A2=1, B=3)]
    assert result[1]["g"] == [tup(A2=2, B=4), tup(A2=2, B=5)]
    assert result[2]["A1"] == 3
    assert result[2]["g"] == []


def test_fig2_unnest_inverts_grouping(r2):
    """µ_g(Γ_{g;=A2;id}(R2)) = R2 (the paper's µ_g(R2^g) = R2)."""
    grouped = GroupUnary(r2, "g", ["A2"], "=", AggSpec("id"))
    unnested = Unnest(grouped, "g", ["A2", "B"])
    result = [t.project(["A2", "B"]) for t in rows(unnested)]
    assert result == [tup(A2=1, B=2), tup(A2=1, B=3),
                      tup(A2=2, B=4), tup(A2=2, B=5)]


def test_fig2_rcount_join_fig_caption(r1, r2):
    """The Fig. 2 caption's motivation: joining R1 via left outer join
    to R2^count must give count 0 for A1=3 — replayed through Eqv. 2's
    right-hand side."""
    from repro.nal import OuterJoin, ProjectAway
    from repro.nal.scalar import Const
    grouped = GroupUnary(r2, "g", ["A2"], "=", AggSpec("count"))
    corr = Comparison(AttrRef("A1"), "=", AttrRef("A2"))
    plan = ProjectAway(
        OuterJoin(r1, grouped, corr, "g", Const(0)), ["A2"])
    assert rows(plan) == [tup(A1=1, g=2), tup(A1=2, g=2), tup(A1=3, g=0)]
