"""Unit and integration tests for the vectorized engine's batch layer.

The differential suite (``test_engine_differential.py``) already pins
vectorized ≡ pipelined ≡ physical ≡ reference on randomized operator
trees; this file tests the batch machinery itself — ``Batch``
immutability and lazy caching, the numeric-column kernels and their
numpy/pure-python parity, the fused select-over-map pass (that it
engages on the normalizer's ``where`` shape, bails out on
non-reproducible data, and stays disabled under observation) and the
``auto`` mode dispatch.
"""

from __future__ import annotations

import pytest

from repro.api import Database, compile_query, trace_query
from repro.datagen import BIDS_DTD, generate_bids
from repro.engine.batch import (
    Batch,
    BatchBuffers,
    BroadcastColumn,
    compare_columns,
    numeric_column,
    numpy_available,
    numpy_enabled,
    selection_vector,
    use_numpy,
)
from repro.nal import NULL, Tup
from repro.optimizer.cost import preferred_mode

BIDS_QUERY = '''
let $d1 := doc("bids.xml")
for $b1 in $d1//bidtuple
where $b1/bid >= 900
return <big>{ $b1/itemno }</big>
'''


@pytest.fixture
def bids_db() -> Database:
    db = Database()
    db.register_tree("bids.xml", generate_bids(300, items=60, seed=7),
                     dtd_text=BIDS_DTD)
    return db


# ----------------------------------------------------------------------
# Batch representation
# ----------------------------------------------------------------------
def test_batch_row_column_roundtrip():
    rows = [Tup({"A": i, "B": i * 10}) for i in range(4)]
    batch = Batch.from_rows(rows)
    assert not batch.is_columnar
    assert batch.column("B") == [0, 10, 20, 30]
    again = Batch.from_columns({"A": batch.column("A"),
                                "B": batch.column("B")}, len(batch))
    assert again.is_columnar
    assert again.to_rows() == rows


def test_batch_to_rows_is_cached():
    batch = Batch.from_columns({"A": [1, 2]}, 2)
    assert batch.to_rows() is batch.to_rows()


def test_take_preserves_the_source_batch():
    batch = Batch.from_columns({"A": [0, 1, 2, 3]}, 4)
    taken = batch.take(selection_vector([3, 1]))
    assert taken.column("A") == [3, 1]
    assert len(taken) == 2
    # the source is untouched (batch immutability)
    assert batch.column("A") == [0, 1, 2, 3]
    assert len(batch) == 4


def test_with_column_appends_without_mutating():
    batch = Batch.from_columns({"A": [1, 2]}, 2)
    extended = batch.with_column("B", ["x", "y"])
    assert extended.attrs == ("A", "B")
    assert extended.to_rows() == [Tup({"A": 1, "B": "x"}),
                                  Tup({"A": 2, "B": "y"})]
    assert batch.attrs == ("A",)


def test_replicate_builds_the_unnest_shape():
    batch = Batch.from_columns({"A": [10, 20]}, 2)
    out = batch.replicate([0, 0, 1], "v", ["a", "b", "c"])
    assert out.to_rows() == [Tup({"A": 10, "v": "a"}),
                             Tup({"A": 10, "v": "b"}),
                             Tup({"A": 20, "v": "c"})]


def test_project_and_rename():
    batch = Batch.from_columns({"A": [1], "B": [2], "C": [3]}, 1)
    assert batch.project(("C", "A")).attrs == ("C", "A")
    assert batch.project_away(("B",)).attrs == ("A", "C")
    renamed = batch.rename({"A": "X"})
    assert renamed.attrs == ("X", "B", "C")
    assert renamed.column("X") == [1]


def test_batch_buffers_pool_reuses_released_buffers():
    buffers = BatchBuffers()
    first = buffers.acquire()
    first.extend([1, 2, 3])
    buffers.release(first)
    second = buffers.acquire()
    assert second is first and second == []   # cleared and reused
    assert buffers.peak == 1 and buffers.acquired == 2


# ----------------------------------------------------------------------
# Numeric kernels
# ----------------------------------------------------------------------
def test_numeric_column_edges():
    assert numeric_column([1, 2.5, "3", NULL]) == [1.0, 2.5, 3.0, None]
    # any non-numeric entry disqualifies the whole column
    assert numeric_column([1, "not a number"]) is None
    # booleans are not numbers under the comparison semantics
    assert numeric_column([1, True]) is None
    # ints beyond exact float range must not be silently rounded
    assert numeric_column([2 ** 53 + 1]) is None


def test_numeric_column_broadcast():
    broadcast = BroadcastColumn([7] * 1000)
    assert numeric_column(broadcast) == [7.0] * 1000
    assert numeric_column(BroadcastColumn(["x"] * 5)) is None


@pytest.mark.parametrize("op", ("=", "!=", "<", "<=", ">", ">="))
def test_compare_columns_numpy_parity(op):
    left = [1, 2.0, "3", NULL, 5]
    right = [1.0, 3, 2, 4, NULL]
    with use_numpy(False):
        pure = compare_columns(left, op, right)
    assert compare_columns(left, op, right) == pure
    assert pure[3] is False and pure[4] is False   # NULL compares false


def test_use_numpy_toggle_restores():
    before = numpy_enabled()
    with use_numpy(False):
        assert not numpy_enabled()
    assert numpy_enabled() == before


# ----------------------------------------------------------------------
# Fused select-over-map
# ----------------------------------------------------------------------
def _spy_on_fusion(monkeypatch):
    """Wrap the fused kernel; records True per engaged batch, False per
    data-dependent bail-out."""
    import repro.engine.vectorized as vec
    outcomes: list[bool] = []
    real = vec._fused_select_map

    def spy(plan, fusion, batch, env, ctx):
        result = real(plan, fusion, batch, env, ctx)
        outcomes.append(result is not None)
        return result

    monkeypatch.setattr(vec, "_fused_select_map", spy)
    return outcomes


def test_fused_select_engages_and_matches_pipelined(bids_db,
                                                    monkeypatch):
    outcomes = _spy_on_fusion(monkeypatch)
    plan = compile_query(BIDS_QUERY, bids_db).best().plan
    pipelined = bids_db.execute(plan, mode="pipelined")
    with use_numpy(False):
        vectorized = bids_db.execute(plan, mode="vectorized")
    assert outcomes == [True], "fused pass should engage on this shape"
    assert vectorized.rows == pipelined.rows
    assert vectorized.output == pipelined.output


def test_fused_select_bails_on_non_numeric_text(monkeypatch):
    db = Database()
    db.register_text(
        "vals.xml",
        "<r>" + "".join(f"<e><v>{text}</v></e>"
                        for text in ("10", "25", "oops", "40")) + "</r>",
        dtd_text="<!ELEMENT r (e*)>\n<!ELEMENT e (v)>\n"
                 "<!ELEMENT v (#PCDATA)>")
    query = '''
for $x in doc("vals.xml")//e
where $x/v >= 20
return <m>{ $x/v }</m>
'''
    outcomes = _spy_on_fusion(monkeypatch)
    plan = compile_query(query, db).best().plan
    pipelined = db.execute(plan, mode="pipelined")
    vectorized = db.execute(plan, mode="vectorized")
    assert outcomes == [False], \
        "non-numeric text must bail out of the fused pass"
    assert vectorized.rows == pipelined.rows
    assert vectorized.output == pipelined.output


def test_fusion_disabled_under_analyze(bids_db, monkeypatch):
    outcomes = _spy_on_fusion(monkeypatch)
    plan = compile_query(BIDS_QUERY, bids_db).best().plan
    plain = bids_db.execute(plan, mode="vectorized")
    analyzed = bids_db.execute(plan, mode="vectorized", analyze=True)
    assert outcomes == [True], \
        "only the un-analyzed run may use the fused pass"
    assert analyzed.rows == plain.rows
    assert analyzed.operator_counts, \
        "EXPLAIN ANALYZE must still record per-operator counts"


def test_vectorized_metrics_are_recorded(bids_db):
    _, result = trace_query(BIDS_QUERY, bids_db, mode="vectorized")
    batch_counters = [name for name in result.metrics.counters
                      if name.startswith("vectorized.")
                      and name.endswith(".batches")]
    assert batch_counters, "vectorized.* batch counters missing"
    histograms = [name for name in result.metrics.histograms
                  if name.startswith("vectorized.")
                  and name.endswith(".rows_per_batch")]
    assert histograms, "rows_per_batch histograms missing"


# ----------------------------------------------------------------------
# Mode selection
# ----------------------------------------------------------------------
def test_auto_mode_matches_explicit_modes(bids_db):
    plan = compile_query(BIDS_QUERY, bids_db).best().plan
    mode = preferred_mode(plan, bids_db.store)
    assert mode in ("pipelined", "vectorized")
    assert mode == "vectorized", \
        "a scan-filter plan over hundreds of tuples should go columnar"
    auto = bids_db.execute(plan, mode="auto")
    explicit = bids_db.execute(plan, mode=mode)
    assert auto.rows == explicit.rows
    assert auto.output == explicit.output


def test_numpy_presence_does_not_change_results(bids_db):
    if not numpy_available():
        pytest.skip("numpy not importable in this environment")
    plan = compile_query(BIDS_QUERY, bids_db).best().plan
    with_numpy = bids_db.execute(plan, mode="vectorized")
    with use_numpy(False):
        without = bids_db.execute(plan, mode="vectorized")
    assert with_numpy.rows == without.rows
    assert with_numpy.output == without.output
