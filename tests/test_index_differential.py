"""Differential testing of index-based plans (test_engine_differential
style, lifted to whole queries over randomized documents).

For random documents and random constant predicates, the ``+index``
plan alternatives must return *byte-identical* output — content, order
and duplicate handling — to their scan-based base plans, in the
physical, pipelined and reference execution modes.  Documents mix numeric,
numeric-looking and textual values to stress the coercion-faithful
sorted structures of the value index, plus empty leaves, repeated
values (duplicate-elimination after the ancestor lift) and items with
several matching leaves (existential semantics)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.api import Database, compile_query
from repro.xmldb.node import element

LEAF_TEXTS = ["1", "2", "10", "007", "2.0", "-3", "x", "y2", "zz",
              "2x", " 2", "nan", "inf"]
# the front end has no unary minus; negative values appear only as data
CONSTANTS = [2, 10, 0.5, "2", "007", "x", "y2", "a"]
OPS = ["=", "<", "<=", ">", ">="]


@st.composite
def documents(draw):
    """<r> with it children; each it has 0–3 v leaves and maybe @k."""
    root = element("r")
    for _ in range(draw(st.integers(min_value=0, max_value=7))):
        item = element("it")
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            item.append_child(
                element("v", draw(st.sampled_from(LEAF_TEXTS))))
        if draw(st.booleans()):
            item.set_attribute("k", draw(st.sampled_from(LEAF_TEXTS)))
        root.append_child(item)
    return root


def run_differential(root, query_text):
    """Execute every +index alternative against its base; assert byte
    equality in both modes.  Returns the number of indexed variants."""
    db = Database(index_mode="lazy")
    db.register_tree("r.xml", root)
    query = compile_query(query_text, db)
    indexed = [a for a in query.plans() if a.label.endswith("+index")]
    for alt in indexed:
        base_label = alt.label[:-len("+index")]
        base = db.execute(query.plan_named(base_label).plan)
        probed = db.execute(alt.plan)
        assert probed.output == base.output, alt.label
        assert probed.rows == base.rows, alt.label
        reference = db.execute(alt.plan, mode="reference")
        assert reference.output == base.output, alt.label
        pipelined = db.execute(alt.plan, mode="pipelined")
        assert pipelined.output == base.output, alt.label
        assert pipelined.rows == base.rows, alt.label
    return len(indexed)


@settings(max_examples=60, deadline=None)
@given(root=documents())
def test_structural_probes(root):
    # the cost model may refuse the probe on trivially small documents
    # (a log₂ descent does not beat a four-node scan); whenever it is
    # offered, run_differential asserts byte equality
    run_differential(root, """
let $d := doc("r.xml")
for $x in $d//v
return <o> { $x } </o>
""")


def test_structural_probe_offered_on_nontrivial_document():
    root = element("r", *[element("it", element("v", str(i)))
                          for i in range(20)])
    assert run_differential(root, """
let $d := doc("r.xml")
for $x in $d//v
return <o> { $x } </o>
""") >= 1


@settings(max_examples=60, deadline=None)
@given(root=documents())
def test_path_probes(root):
    run_differential(root, """
let $d := doc("r.xml")
for $x in $d/it/v
return <o> { $x } </o>
""")


@settings(max_examples=120, deadline=None)
@given(root=documents(), op=st.sampled_from(OPS),
       const=st.sampled_from(CONSTANTS))
def test_value_probes_existential_over_leaves(root, op, const):
    value = f'"{const}"' if isinstance(const, str) else repr(const)
    run_differential(root, f"""
let $d := doc("r.xml")
for $x in $d//it
where $x/v {op} {value}
return <o> {{ $x }} </o>
""")


@settings(max_examples=80, deadline=None)
@given(root=documents(), op=st.sampled_from(OPS),
       const=st.sampled_from(CONSTANTS))
def test_value_probes_on_attributes(root, op, const):
    value = f'"{const}"' if isinstance(const, str) else repr(const)
    run_differential(root, f"""
let $d := doc("r.xml")
for $x in $d//it
where $x/@k {op} {value}
return <o> {{ $x }} </o>
""")


@settings(max_examples=60, deadline=None)
@given(root=documents(), const=st.sampled_from(CONSTANTS))
def test_value_probe_with_residual_conjunct(root, const):
    value = f'"{const}"' if isinstance(const, str) else repr(const)
    run_differential(root, f"""
let $d := doc("r.xml")
for $x in $d//it
where $x/v >= {value} and $x/@k = "2"
return <o> {{ $x }} </o>
""")


@settings(max_examples=40, deadline=None)
@given(root=documents())
def test_document_order_after_lift(root):
    """Qualifying items come out in document order even though the
    value index groups leaves by value, not position."""
    db = Database(index_mode="lazy")
    db.register_tree("r.xml", root)
    query = compile_query("""
let $d := doc("r.xml")
for $x in $d//it
where $x/v >= "0"
return <o> { $x } </o>
""", db)
    labels = [a.label for a in query.plans()]
    if "nested+index" not in labels:
        return
    rows = db.execute(query.plan_named("nested+index").plan).rows
    keys = [row["x"].order_key for row in rows]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))   # duplicates eliminated


def test_empty_document_and_empty_results():
    root = element("r")
    assert run_differential(root, """
let $d := doc("r.xml")
for $x in $d//it
where $x/v = 1
return <o> { $x } </o>
""") >= 1


def test_selective_value_probe_offered_and_empty_result_exact():
    root = element("r", *[element("it", element("v", str(i)))
                          for i in range(30)])
    db = Database(index_mode="lazy")
    db.register_tree("r.xml", root)
    query = compile_query("""
let $d := doc("r.xml")
for $x in $d//it
where $x/v = 999
return <o> { $x } </o>
""", db)
    assert "nested+index" in [a.label for a in query.plans()]
    result = db.execute(query.plan_named("nested+index").plan)
    assert result.output == "" and result.rows == []
    assert result.stats["total_scans"] == 0
