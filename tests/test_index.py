"""Unit tests for the index subsystem (`repro.index`): element index,
path index (DataGuide) with DTD validation, sorted value index, and the
per-store IndexManager lifecycle."""

from __future__ import annotations

import pytest

from repro.engine.context import EvalContext
from repro.engine.physical import run_physical
from repro.errors import EvaluationError, UnknownDocumentError
from repro.index import (
    ElementIndex,
    IndexProbe,
    PathIndex,
    ValueIndex,
    build_indexes,
)
from repro.nal.unary_ops import IndexScan
from repro.xmldb.document import DocumentStore
from repro.xmldb.node import assign_order_keys, element


def tree():
    """<r><it><v>10</v><v>x</v></it><it k="5"><v>2</v></it><n/></r>"""
    root = element(
        "r",
        element("it", element("v", "10"), element("v", "x")),
        element("it", element("v", "2"), k="5"),
        element("n"),
    )
    assign_order_keys(root)
    return root


# ----------------------------------------------------------------------
# Element index
# ----------------------------------------------------------------------
def test_element_index_counts_and_order():
    idx = ElementIndex(tree())
    assert idx.count("it") == 2
    assert idx.count("v") == 3
    assert idx.count("missing") == 0
    nodes = idx.lookup("v")
    assert [n.string_value() for n in nodes] == ["10", "x", "2"]
    assert [n.order_key for n in nodes] == sorted(
        n.order_key for n in nodes)


def test_element_index_excludes_root_by_default():
    root = element("a", element("a"), element("b"))
    assign_order_keys(root)
    idx = ElementIndex(root)
    assert len(idx.lookup("a")) == 1           # //a from the root
    assert len(idx.lookup("a", include_root=True)) == 2
    assert idx.tags() == ["a", "b"]


# ----------------------------------------------------------------------
# Path index
# ----------------------------------------------------------------------
def test_path_index_dataguide_paths():
    idx = PathIndex(tree())
    assert idx.paths() == [
        ("r",),
        ("r", "it"),
        ("r", "it", "@k"),
        ("r", "it", "v"),
        ("r", "n"),
    ]
    assert len(idx.nodes_at(("r", "it", "v"))) == 3
    assert len(idx.nodes_at(("r", "it", "@k"))) == 1
    assert idx.nodes_at(("r", "nope")) == []


def test_path_index_pattern_lookup():
    idx = PathIndex(tree())
    child = idx.lookup((("child", "it"), ("child", "v")))
    descendant = idx.lookup((("descendant", "v"),))
    assert child == descendant
    attr = idx.lookup((("child", "it"), ("attribute", "k")))
    assert [a.text for a in attr] == ["5"]
    # descendant steps never match attribute components
    assert idx.lookup((("descendant", "k"),)) == []


def test_path_index_descendant_repeated_tags():
    root = element("a", element("a", element("a")))
    assign_order_keys(root)
    idx = PathIndex(root)
    # //a from the root: both nested a elements, in document order
    assert len(idx.lookup((("descendant", "a"),))) == 2
    # //a/a: the innermost only
    assert len(idx.lookup((("descendant", "a"), ("child", "a")))) == 1


def test_path_index_merges_multiple_paths_in_document_order():
    root = element("r", element("x", element("v", "1")),
                   element("y", element("v", "2")),
                   element("x", element("v", "3")))
    assign_order_keys(root)
    idx = PathIndex(root)
    nodes = idx.lookup((("descendant", "v"),))
    assert [n.string_value() for n in nodes] == ["1", "2", "3"]


# ----------------------------------------------------------------------
# DTD validation
# ----------------------------------------------------------------------
def test_dataguide_validates_against_conforming_dtd():
    from repro.xmldb.dtd import parse_dtd
    dtd = parse_dtd("""
<!ELEMENT r (it*, n?)>
<!ELEMENT it (v*)>
<!ATTLIST it k CDATA #IMPLIED>
<!ELEMENT v (#PCDATA)>
<!ELEMENT n EMPTY>
""")
    assert PathIndex(tree()).validate_against_dtd(dtd) == ()


def test_dataguide_reports_dtd_violations():
    from repro.xmldb.dtd import parse_dtd
    dtd = parse_dtd("<!ELEMENT r (it*)>\n<!ELEMENT it (#PCDATA)>")
    violations = PathIndex(tree()).validate_against_dtd(dtd)
    # v under it, the k attribute and the undeclared n are all illegal
    assert ("r", "it", "v") in violations
    assert ("r", "it", "@k") in violations
    assert ("r", "n") in violations
    assert ("r", "it") not in violations


# ----------------------------------------------------------------------
# Value index
# ----------------------------------------------------------------------
def values_tree():
    root = element("r", *[element("v", t) for t in
                          ["10", "2", "x", "007", "2.0", "y", "2"]])
    assign_order_keys(root)
    return root


def test_value_index_equality_numeric_coercion():
    idx = ValueIndex(values_tree())
    path = ("r", "v")
    # "2" and "2.0" compare equal numerically; "007" equals 7
    assert [n.string_value() for n in idx.probe(path, "=", 2)] == \
        ["2", "2.0", "2"]
    assert [n.string_value() for n in idx.probe(path, "=", "2")] == \
        ["2", "2.0", "2"]
    assert [n.string_value() for n in idx.probe(path, "=", 7)] == ["007"]
    assert [n.string_value() for n in idx.probe(path, "=", "x")] == ["x"]
    assert idx.probe(path, "=", "missing") == []


def test_value_index_range_numeric_constant():
    idx = ValueIndex(values_tree())
    path = ("r", "v")
    # numeric entries compare numerically; "x"/"y" fall back to string
    # comparison against "3" and both exceed it
    got = sorted(n.string_value() for n in idx.probe(path, ">", 3))
    assert got == sorted(["10", "007", "x", "y"])
    got = sorted(n.string_value() for n in idx.probe(path, "<=", 2))
    assert got == sorted(["2", "2.0", "2"])


def test_value_index_range_string_constant():
    idx = ValueIndex(values_tree())
    path = ("r", "v")
    # a non-numeric constant makes every comparison textual
    got = sorted(n.string_value() for n in idx.probe(path, ">", "a1"))
    assert got == sorted(["x", "y"])
    got = sorted(n.string_value() for n in idx.probe(path, "<", "a1"))
    assert got == sorted(["10", "2", "007", "2.0", "2"])
    # a numeric *string* constant still compares numerically against
    # numeric entries: 007 < "1" is 7 < 1, false
    assert idx.probe(path, "<", "1") == []


def test_value_index_results_in_document_order():
    idx = ValueIndex(values_tree())
    nodes = idx.probe(("r", "v"), ">=", 2)
    assert [n.order_key for n in nodes] == sorted(
        n.order_key for n in nodes)


def test_value_index_probe_range():
    idx = ValueIndex(values_tree())
    got = sorted(n.string_value()
                 for n in idx.probe_range(("r", "v"), 2, 9))
    assert got == sorted(["2", "2.0", "2", "007"])
    got = sorted(n.string_value()
                 for n in idx.probe_range(("r", "v"), 2, 9,
                                          low_inclusive=False))
    assert got == ["007"]


def test_value_index_skips_non_atomic_paths():
    root = element("r", element("it", element("v", "1")))
    assign_order_keys(root)
    idx = ValueIndex(root)
    assert idx.is_indexed(("r", "it", "v"))
    assert not idx.is_indexed(("r", "it"))    # has element children
    assert not idx.is_indexed(("r",))
    assert idx.probe(("r", "it"), "=", 1) == []


def test_value_index_indexes_attributes():
    idx = ValueIndex(tree())
    nodes = idx.probe(("r", "it", "@k"), "=", 5)
    assert [n.text for n in nodes] == ["5"]


def test_value_index_rejects_bool_and_unknown_ops():
    idx = ValueIndex(values_tree())
    with pytest.raises(EvaluationError, match="boolean"):
        idx.probe(("r", "v"), "=", True)
    with pytest.raises(EvaluationError, match="ranges"):
        idx.probe(("r", "v"), "!=", 2)


def test_value_index_nan_text_never_matches_numerically():
    # "nan" parses as float NaN: it must not poison the sorted numeric
    # arrays, and every numeric comparison against it is false
    root = element("r", *[element("v", t) for t in
                          ["5", "nan", "1", "x"]])
    assign_order_keys(root)
    idx = ValueIndex(root)
    path = ("r", "v")
    assert [n.string_value() for n in idx.probe(path, "<=", 2)] == ["1"]
    assert [n.string_value() for n in idx.probe(path, ">", 2)] == \
        ["5", "x"]
    assert idx.probe(path, "=", float("nan")) == []
    # string-typed constants still reach the "nan" text via str compare
    got = [n.string_value() for n in idx.probe(path, ">=", "m")]
    assert got == ["nan", "x"]


def test_value_index_counts():
    idx = ValueIndex(values_tree())
    assert idx.entry_count(("r", "v")) == 7
    assert idx.distinct_count(("r", "v")) == 5   # 2≡2.0≡2 collapse
    assert idx.entry_count(("r", "nope")) == 0


# ----------------------------------------------------------------------
# Manager lifecycle and probes
# ----------------------------------------------------------------------
def make_store(mode: str) -> DocumentStore:
    store = DocumentStore(index_mode=mode)
    store.register_tree("t.xml", tree())
    return store


def test_manager_eager_builds_at_register():
    store = make_store("eager")
    assert store.indexes.built("t.xml")


def test_manager_lazy_builds_on_first_probe():
    store = make_store("lazy")
    assert not store.indexes.built("t.xml")
    nodes = store.indexes.probe(
        IndexProbe("t.xml", "element", (("descendant", "v"),)))
    assert len(nodes) == 3
    assert store.indexes.built("t.xml")


def test_manager_off_is_disabled_but_explicit_build_works():
    store = make_store("off")
    assert not store.indexes.enabled
    assert not store.indexes.built("t.xml")
    indexes = store.indexes.for_document("t.xml")
    assert indexes.element.count("it") == 2


def test_manager_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown index mode"):
        DocumentStore(index_mode="turbo")


def test_manager_probe_records_stats():
    store = make_store("lazy")
    probe = IndexProbe("t.xml", "element", (("descendant", "v"),))
    store.indexes.probe(probe, store.stats)
    snap = store.stats.snapshot()
    assert snap["index_probes"] == {"t.xml": 1}
    assert snap["total_probes"] == 1
    assert snap["node_visits"] == 3
    store.stats.reset()
    assert store.stats.snapshot()["index_probes"] == {}


def test_manager_value_probe_lifts_ancestors():
    store = make_store("lazy")
    probe = IndexProbe("t.xml", "value",
                       (("descendant", "it"), ("child", "v")),
                       op=">=", value=2, lift=1)
    nodes = store.indexes.probe(probe)
    # both "10" and "2" qualify numerically; their it parents dedup
    assert [n.name for n in nodes] == ["it", "it"]
    assert nodes[0].order_key < nodes[1].order_key


def test_manager_value_probe_rejects_non_atomic_pattern():
    store = make_store("lazy")
    probe = IndexProbe("t.xml", "value", (("descendant", "it"),),
                       op="=", value=2)
    with pytest.raises(EvaluationError, match="non-atomic"):
        store.indexes.probe(probe)
    assert not store.indexes.can_value_probe(
        "t.xml", (("descendant", "it"),))
    assert store.indexes.can_value_probe(
        "t.xml", (("descendant", "v"),))


def test_manager_unregister_drops_indexes():
    store = make_store("eager")
    store.unregister("t.xml")
    assert not store.indexes.built("t.xml")
    with pytest.raises(UnknownDocumentError):
        store.unregister("t.xml")


def test_build_indexes_reports_dtd_violations_via_manager():
    store = DocumentStore(index_mode="lazy")
    store.register_text("bad.xml", "<r><odd/></r>",
                        dtd_text="<!ELEMENT r EMPTY>")
    assert ("r", "odd") in store.indexes.dtd_violations("bad.xml")
    doc = store.get("bad.xml")
    assert build_indexes(doc).dtd_violations == \
        store.indexes.dtd_violations("bad.xml")


# ----------------------------------------------------------------------
# IndexScan operator
# ----------------------------------------------------------------------
def test_index_scan_reference_and_physical_agree():
    store = make_store("lazy")
    scan = IndexScan("x", IndexProbe("t.xml", "path",
                                     (("child", "it"), ("child", "v"))))
    ctx = EvalContext(store)
    reference = scan.evaluate(ctx)
    physical = run_physical(scan, ctx)
    assert physical == reference
    assert [t["x"].string_value() for t in physical] == ["10", "x", "2"]
    assert scan.attrs() == frozenset({"x"})
    assert scan == scan.rebuild(())


def test_index_scan_label_and_estimate():
    from repro.optimizer.cost import CostModel
    store = make_store("lazy")
    probe = IndexProbe("t.xml", "value", (("descendant", "v"),),
                       op=">", value=5)
    scan = IndexScan("x", probe)
    assert "IdxScan" in scan.label() and "t.xml" in scan.label()
    cost = CostModel(store).estimate(scan)
    assert cost.cardinality == len(store.indexes.probe(probe))
    assert cost.total < store.get("t.xml").element_count * 2
