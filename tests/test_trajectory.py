"""Tests for the perf-trajectory gate (repro.bench.trajectory)."""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    GATE_RULES,
    check,
    load_baseline,
    record_key,
    write_baselines,
)


def q8_record(**overrides) -> dict:
    record = {
        "items": 20, "bids": 1000, "hot_items": 20,
        "physical_seconds": 0.7, "pipelined_seconds": 0.013,
        "speedup": 52.0,
        "physical_node_visits": 187107,
        "pipelined_node_visits": 3565,
    }
    record.update(overrides)
    return record


def artifact(tmp_path, name: str, queries: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps({"schema": "repro-bench/1",
                                "queries": queries}))
    return str(path)


@pytest.fixture
def baselined(tmp_path):
    """A baseline dir seeded from one q8 artifact."""
    art = artifact(tmp_path, "q8.json", {"q8_pipeline": [q8_record()]})
    write_baselines([art], tmp_path)
    return tmp_path


def test_write_baselines_produces_tracked_files(tmp_path):
    art = artifact(tmp_path, "q8.json", {"q8_pipeline": [q8_record()]})
    (written,) = write_baselines([art], tmp_path)
    assert written.name == "BENCH_q8_pipeline.json"
    baseline = load_baseline(written)
    assert record_key(q8_record()) in baseline
    payload = json.loads(written.read_text())
    assert payload["schema"] == "repro-bench-baseline/1"
    assert payload["gated_metrics"] == GATE_RULES["q8_pipeline"]


def test_gate_passes_on_unchanged_results(tmp_path, baselined):
    fresh = artifact(tmp_path, "fresh.json",
                     {"q8_pipeline": [q8_record()]})
    assert check([fresh], baselined) == []


def test_gate_tolerates_drift_within_threshold(tmp_path, baselined):
    fresh = artifact(tmp_path, "fresh.json",
                     {"q8_pipeline": [q8_record(speedup=52.0 * 0.85)]})
    assert check([fresh], baselined) == []


def test_gate_fails_on_speedup_regression(tmp_path, baselined):
    fresh = artifact(tmp_path, "fresh.json",
                     {"q8_pipeline": [q8_record(speedup=52.0 * 0.7)]})
    issues = check([fresh], baselined)
    assert len(issues) == 1
    assert "speedup dropped" in issues[0]


def test_gate_fails_on_counter_regression(tmp_path, baselined):
    fresh = artifact(tmp_path, "fresh.json", {"q8_pipeline": [
        q8_record(pipelined_node_visits=int(3565 * 1.5))]})
    issues = check([fresh], baselined)
    assert len(issues) == 1
    assert "pipelined_node_visits rose" in issues[0]


def test_counter_improvement_never_fails(tmp_path, baselined):
    fresh = artifact(tmp_path, "fresh.json", {"q8_pipeline": [
        q8_record(pipelined_node_visits=100, speedup=500.0)]})
    assert check([fresh], baselined) == []


def test_params_mismatch_is_an_error_not_a_pass(tmp_path, baselined):
    fresh = artifact(tmp_path, "fresh.json", {"q8_pipeline": [
        q8_record(items=40, bids=2000)]})
    issues = check([fresh], baselined)
    assert len(issues) == 1
    assert "no record" in issues[0]
    assert "bench-update" in issues[0]


def test_missing_baseline_file_is_an_error(tmp_path):
    fresh = artifact(tmp_path, "fresh.json",
                     {"q8_pipeline": [q8_record()]})
    issues = check([fresh], tmp_path)      # nothing written here
    assert len(issues) == 1
    assert "no baseline" in issues[0]


def test_ungated_queries_are_ignored(tmp_path):
    fresh = artifact(tmp_path, "fresh.json",
                     {"q3": [{"label": "nested", "seconds": 0.1}]})
    assert check([fresh], tmp_path) == []


def test_near_unity_speedups_are_not_gated(tmp_path):
    # A 1.2x baseline ratio is timing noise; a ±20% band around it
    # would flake, so the gate skips it (counters are still gated).
    base = artifact(tmp_path, "base.json", {"q10_order": [
        {"query": "q10_orderonly", "items": 600, "bids": 3000,
         "speedup": 1.2}]})
    write_baselines([base], tmp_path)
    fresh = artifact(tmp_path, "fresh.json", {"q10_order": [
        {"query": "q10_orderonly", "items": 600, "bids": 3000,
         "speedup": 0.8}]})
    assert check([fresh], tmp_path) == []


def test_later_artifacts_replace_earlier_records(tmp_path):
    first = artifact(tmp_path, "first.json",
                     {"q8_pipeline": [q8_record(speedup=10.0)]})
    second = artifact(tmp_path, "second.json",
                      {"q8_pipeline": [q8_record(speedup=50.0)]})
    write_baselines([first, second], tmp_path)
    baseline = load_baseline(tmp_path / "BENCH_q8_pipeline.json")
    assert baseline[record_key(q8_record())]["speedup"] == 50.0


def test_repo_baselines_cover_the_ci_sizes():
    """The committed BENCH_*.json files must match what CI measures,
    or the gate would fail every build with a params mismatch."""
    import pathlib
    root = pathlib.Path(__file__).resolve().parent.parent
    expectations = {
        "BENCH_q7_index.json": [(("items", 2000),)],
        "BENCH_q8_pipeline.json": [(("items", 20), ("bids", 1000))],
        "BENCH_q9_storage.json": [
            (("query", "q9_digest"), ("items", 2000), ("bids", 10000)),
            (("query", "q9_filter"), ("items", 2000), ("bids", 10000))],
        "BENCH_q10_order.json": [
            (("query", "q10_report"), ("items", 600), ("bids", 3000)),
            (("query", "q10_orderonly"), ("items", 600),
             ("bids", 3000))],
    }
    for name, keys in expectations.items():
        baseline = load_baseline(root / name)
        for key in keys:
            assert key in baseline, f"{name} lacks record for {key}"
