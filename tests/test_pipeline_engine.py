"""Pipelined engine: edge cases the differential tests must pin.

Covers the corners named in the engine's contract: empty inputs (lazy
hash builds mean an empty probe side must not run the build side),
all-NULL join keys, quantifier subplans whose first witness is the last
tuple, short-circuiting actually stopping the inner scan, and
``reset_stats=False`` stat accumulation across ``execute`` calls.
"""

from __future__ import annotations

import pytest

from repro import Database, compile_query
from repro.datagen import BIB_DTD, REVIEWS_DTD, generate_bib, \
    generate_reviews
from repro.engine.context import EvalContext
from repro.engine.executor import execute
from repro.engine.pipeline import run_pipelined
from repro.nal import (
    NULL,
    AntiJoin,
    Join,
    OuterJoin,
    Select,
    SemiJoin,
    Table,
    Tup,
)
from repro.nal.scalar import (
    AttrRef,
    Comparison,
    Const,
    Exists,
    FuncCall,
    NestedPlan,
)
from repro.xmldb.document import DocumentStore


def _run(plan, **kwargs):
    return list(run_pipelined(plan, EvalContext(DocumentStore()),
                              **kwargs))


JOIN_PRED = Comparison(AttrRef("A"), "=", AttrRef("C"))
EMPTY_LEFT = Table("L", ["A"], [])
EMPTY_RIGHT = Table("R", ["C"], [])
SOME_LEFT = Table("L", ["A"], [{"A": 1}, {"A": 2}])
SOME_RIGHT = Table("R", ["C"], [{"C": 2}, {"C": 3}])


# ----------------------------------------------------------------------
# Empty inputs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make", [
    lambda l, r: Join(l, r, JOIN_PRED),
    lambda l, r: SemiJoin(l, r, JOIN_PRED),
    lambda l, r: AntiJoin(l, r, JOIN_PRED),
    lambda l, r: OuterJoin(l, r, JOIN_PRED, "g", Const(0)),
])
def test_empty_inputs(make):
    assert _run(make(EMPTY_LEFT, EMPTY_RIGHT)) == []
    assert _run(make(EMPTY_LEFT, SOME_RIGHT)) == []
    reference = make(SOME_LEFT, EMPTY_RIGHT).evaluate(
        EvalContext(DocumentStore()))
    assert _run(make(SOME_LEFT, EMPTY_RIGHT)) == reference


def test_empty_probe_side_never_builds_hash_table():
    """The hash join builds its table on the first probe-side pull, so
    an empty left input leaves the right child entirely unpulled — it
    has no EXPLAIN ANALYZE entry at all."""
    plan = Join(EMPTY_LEFT, SOME_RIGHT, JOIN_PRED)
    result = execute(plan, DocumentStore(), mode="pipelined",
                     analyze=True)
    assert result.rows == []
    assert () in result.operator_counts          # the join ran
    assert (0,) in result.operator_counts        # the left was pulled
    assert (1,) not in result.operator_counts    # the right never was


# ----------------------------------------------------------------------
# All-NULL join keys
# ----------------------------------------------------------------------
def test_all_null_join_keys():
    """NULL keys hash together but must join nothing: NULL = NULL is
    false in the comparison semantics."""
    null_left = Table("L", ["A"], [{"A": NULL}, {"A": NULL}])
    null_right = Table("R", ["C"], [{"C": NULL}, {"C": NULL}])
    ctx = EvalContext(DocumentStore())
    for make in (lambda: Join(null_left, null_right, JOIN_PRED),
                 lambda: SemiJoin(null_left, null_right, JOIN_PRED),
                 lambda: AntiJoin(null_left, null_right, JOIN_PRED),
                 lambda: OuterJoin(null_left, null_right, JOIN_PRED,
                                   "g", Const(0))):
        plan = make()
        assert _run(plan) == plan.evaluate(ctx)
    assert _run(SemiJoin(null_left, null_right, JOIN_PRED)) == []
    assert _run(AntiJoin(null_left, null_right, JOIN_PRED)) == \
        [Tup({"A": NULL}), Tup({"A": NULL})]


# ----------------------------------------------------------------------
# Quantifier short-circuiting
# ----------------------------------------------------------------------
def _exists_plan(rows, witness_value):
    """σ[∃x ∈ ⟨Table⟩ : x = witness] over a single-tuple input."""
    inner = Table("I", ["x"], [{"x": v} for v in rows])
    pred = Comparison(AttrRef("q"), "=", Const(witness_value))
    return Select(Table("O", ["A"], [{"A": 1}]),
                  Exists("q", NestedPlan(inner), pred))


def test_first_witness_is_last_tuple():
    """The witness sitting at the very end of the inner input must still
    be found (off-by-one territory for any early-exit logic)."""
    plan = _exists_plan([1, 2, 3, 4, 5], witness_value=5)
    assert _run(plan) == [Tup({"A": 1})]
    plan = _exists_plan([1, 2, 3, 4, 5], witness_value=9)
    assert _run(plan) == []


def test_exists_short_circuit_stops_inner_scan():
    """A selective exists over a document: pipelined mode stops walking
    the inner document at the first witness, so it visits strictly
    fewer nodes than physical mode while producing identical output."""
    db = Database()
    db.register_tree("bib.xml", generate_bib(60, 2, seed=5),
                     dtd_text=BIB_DTD)
    db.register_tree("reviews.xml", generate_reviews(30, seed=5),
                     dtd_text=REVIEWS_DTD)
    query = compile_query('''
let $d1 := document("bib.xml")
for $t1 in $d1//book/title
where some $t2 in document("reviews.xml")//entry
      satisfies $t2/title = $t1
return <reviewed> { $t1 } </reviewed>
''', db)
    plan = query.plan_named("nested").plan
    phys = db.execute(plan, mode="physical")
    pipe = db.execute(plan, mode="pipelined")
    assert pipe.output == phys.output
    assert pipe.rows == phys.rows
    assert pipe.stats["node_visits"] < phys.stats["node_visits"]


def test_construct_inside_deeper_nested_plan_is_drained():
    """The Ξ guard must see through nested plans *inside subscript
    expressions* (Operator.walk() alone does not descend into them): a
    Construct two nesting levels down still forces a full drain."""
    from repro.nal import Construct, Lit, Map

    inner = Construct(Table("C", ["c"], [{"c": 1}]), [Lit("<x/>")])
    middle = Map(Table("M", ["m"], [{"m": i} for i in range(3)]),
                 "v", NestedPlan(inner))
    plan = Select(Table("O", ["A"], [{"A": 1}]),
                  FuncCall("exists", [NestedPlan(middle)]))
    expected_ctx = EvalContext(DocumentStore())
    plan.evaluate(expected_ctx)
    for run in (lambda c: list(run_pipelined(plan, c)),
                lambda c: list(plan.iterate(c))):
        ctx = EvalContext(DocumentStore())
        run(ctx)
        assert ctx.output_text() == expected_ctx.output_text() == \
            "<x/>" * 3


def test_lazy_right_side_still_fires_construct_side_effects():
    """An empty left input must not skip a Ξ sitting in the right
    subtree of a binary operator: physical/reference mode evaluate both
    operands unconditionally, so the lazy engines must too."""
    from repro.nal import Construct, Cross, Lit

    empty = Table("L", ["A"], [])
    emitting = Construct(Table("R", ["C"], [{"C": 1}]), [Lit("<r/>")])
    for plan in (Cross(empty, emitting),
                 Join(empty, emitting, JOIN_PRED),
                 SemiJoin(empty, emitting, JOIN_PRED),
                 AntiJoin(empty, emitting, JOIN_PRED),
                 OuterJoin(empty, emitting, JOIN_PRED, "g", Const(0)),
                 SemiJoin(empty, emitting, Const(True))):
        for run in (lambda c: list(run_pipelined(plan, c)),
                    lambda c: list(plan.iterate(c))):
            ctx = EvalContext(DocumentStore())
            assert run(ctx) == []
            assert ctx.output_text() == "<r/>", type(plan).__name__


def test_construct_bearing_nested_plans_are_drained():
    """Short-circuiting must never swallow Ξ side effects: a nested plan
    containing a Construct runs to completion even under exists()."""
    from repro.nal import Construct, Lit
    inner = Construct(Table("I", ["x"], [{"x": 1}, {"x": 2}]),
                      [Lit("*")])
    plan = Select(Table("O", ["A"], [{"A": 1}]),
                  Exists("q", NestedPlan(inner),
                         Comparison(AttrRef("q"), "=", Const(1))))
    ctx = EvalContext(DocumentStore())
    rows = list(run_pipelined(plan, ctx))
    assert rows == [Tup({"A": 1})]
    assert ctx.output_text() == "**"   # both inner tuples emitted


# ----------------------------------------------------------------------
# Stats accumulation across execute() calls
# ----------------------------------------------------------------------
def test_reset_stats_false_accumulates():
    db = Database()
    db.register_tree("bib.xml", generate_bib(10, 2, seed=5),
                     dtd_text=BIB_DTD)
    query = compile_query(
        'for $t in doc("bib.xml")//title return <t> { $t } </t>', db)
    plan = query.best().plan
    first = execute(plan, db.store, mode="pipelined")
    baseline = first.stats["node_visits"]
    assert baseline > 0
    accumulated = execute(plan, db.store, mode="pipelined",
                          reset_stats=False)
    assert accumulated.stats["node_visits"] == 2 * baseline
    assert sum(accumulated.stats["document_scans"].values()) == \
        2 * sum(first.stats["document_scans"].values())
    fresh = execute(plan, db.store, mode="pipelined")
    assert fresh.stats["node_visits"] == baseline


# ----------------------------------------------------------------------
# Mode plumbing
# ----------------------------------------------------------------------
def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown execution mode"):
        execute(SOME_LEFT, DocumentStore(), mode="volcano2000")


def test_reference_mode_rejects_analyze():
    with pytest.raises(ValueError, match="physical"):
        execute(SOME_LEFT, DocumentStore(), mode="reference",
                analyze=True)


def test_pipelined_output_matches_physical_on_paper_queries():
    """End-to-end: the paper's Q3 (exists) under all three modes, all
    plan variants, byte-identical output."""
    from repro.bench.queries import PAPER_QUERIES
    spec = PAPER_QUERIES["q3"]
    db = spec.build_db(books=30)
    query = compile_query(spec.text, db)
    for alt in query.plans():
        outputs = {mode: db.execute(alt.plan, mode=mode).output
                   for mode in ("physical", "pipelined", "reference")}
        assert outputs["pipelined"] == outputs["physical"] == \
            outputs["reference"]
