"""Tests for the request-lifecycle layer (:mod:`repro.session`):
session/prepared-query split, plan + result caches, invalidation,
deadlines, and concurrent execution equivalence."""

from __future__ import annotations

import threading

import pytest

from repro.api import Database
from repro.datagen import (
    BIB_DTD,
    REVIEWS_DTD,
    generate_bib,
    generate_reviews,
)
from repro.errors import DeadlineExceededError, UnknownDocumentError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.session import LRUCache

NESTED_QUERY = '''
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name> { $a1 } </name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2/book[$a1 = author]
    return $b2/title }
  </author>
'''

TITLES_QUERY = 'for $t in doc("bib.xml")//title return $t'

EXISTS_QUERY = '''
let $d1 := document("bib.xml")
for $t1 in $d1//book/title
where some $t2 in document("reviews.xml")//entry/title
      satisfies $t1 = $t2
return <book-with-review>{ $t1 }</book-with-review>
'''

SHAPES = (NESTED_QUERY, TITLES_QUERY, EXISTS_QUERY)
MODES = ("physical", "pipelined", "vectorized", "reference")


@pytest.fixture
def db() -> Database:
    db = Database()
    db.register_tree("bib.xml", generate_bib(10, 2, seed=5),
                     dtd_text=BIB_DTD)
    db.register_tree("reviews.xml", generate_reviews(10, seed=5),
                     dtd_text=REVIEWS_DTD)
    return db


# ----------------------------------------------------------------------
# LRUCache
# ----------------------------------------------------------------------
def test_lru_cache_evicts_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1       # refresh a
    cache.put("c", 3)                # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.hits == 3 and cache.misses == 1


def test_lru_cache_size_zero_disables():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_lru_cache_evict_if():
    cache = LRUCache(8)
    for i in range(4):
        cache.put(("k", i), i)
    assert cache.evict_if(lambda key: key[1] % 2 == 0) == 2
    assert len(cache) == 2


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
def test_prepare_reuses_compiled_query(db):
    with db.session() as session:
        first = session.prepare(NESTED_QUERY)
        second = session.prepare(NESTED_QUERY)
        assert first is second, \
            "the same shape must come back from the plan cache"
        assert session.cache_stats()["plan_cache"]["hits"] == 1


def test_plan_cache_keyed_by_ranking(db):
    with db.session() as session:
        heuristic = session.prepare(NESTED_QUERY)
        cost = session.prepare(NESTED_QUERY, ranking="cost")
        assert heuristic is not cost
        assert session.prepare(NESTED_QUERY, ranking="cost") is cost


def test_prepared_query_api(db):
    with db.session() as session:
        prepared = session.prepare(NESTED_QUERY)
        assert prepared.best() is prepared.alternatives[0]
        assert "Ξ" in prepared.explain()
        nested = prepared.plan_named("nested")
        assert nested.label == "nested"
        with pytest.raises(KeyError):
            prepared.plan_named("hashjoin")
        result = prepared.execute(label="nested")
        assert result.output == db.execute(nested.plan).output


def test_plan_cache_records_per_request_metrics(db):
    with db.session() as session:
        cold = MetricsRegistry()
        session.execute(TITLES_QUERY, metrics=cold)
        warm = MetricsRegistry()
        session.execute(TITLES_QUERY, metrics=warm)
        assert cold.counter("session.plan_cache.miss").value == 1
        assert cold.counter("session.plan_cache.hit").value == 0
        assert warm.counter("session.plan_cache.hit").value == 1
        assert warm.counter("session.plan_cache.miss").value == 0


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def test_result_cache_hit_is_marked_and_identical(db):
    with db.session() as session:
        miss = session.execute(NESTED_QUERY)
        hit = session.execute(NESTED_QUERY)
        assert not miss.cached and hit.cached
        assert hit.stats.get("result_cache_hit") is True
        assert hit.output == miss.output
        assert hit.rows == miss.rows


def test_result_cache_hit_rows_are_isolated(db):
    with db.session() as session:
        session.execute(TITLES_QUERY)
        first = session.execute(TITLES_QUERY)
        first.rows.append("mutated")
        second = session.execute(TITLES_QUERY)
        assert second.cached
        assert "mutated" not in second.rows


def test_result_cache_bypassed_for_observed_requests(db):
    """analyze/trace requests must do real work, not replay a cache
    entry; explicit opt-out bypasses too."""
    with db.session() as session:
        session.execute(NESTED_QUERY)
        assert session.execute(NESTED_QUERY, analyze=True).cached \
            is False
        assert session.execute(NESTED_QUERY,
                               tracer=Tracer()).cached is False
        assert session.execute(NESTED_QUERY,
                               use_result_cache=False).cached is False
        assert session.execute(NESTED_QUERY).cached is True


def test_result_cache_shared_across_query_texts_with_same_plan(db):
    """The cache key is the canonical plan digest, so two texts that
    optimize to the same plan share one entry."""
    with db.session() as session:
        session.execute(TITLES_QUERY)
        reformatted = ('for $t in doc("bib.xml")//title'
                       '\nreturn $t')
        result = session.execute(reformatted)
        assert result.cached


def test_result_cache_disabled_by_size_zero(db):
    with db.session(result_cache_size=0) as session:
        session.execute(TITLES_QUERY)
        assert session.execute(TITLES_QUERY).cached is False


def test_unknown_mode_rejected_even_on_cache_hit(db):
    with db.session() as session:
        session.execute(TITLES_QUERY)
        with pytest.raises(ValueError):
            session.execute(TITLES_QUERY, mode="bogus")


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_reregistering_document_evicts_caches(db):
    with db.session() as session:
        warm = session.execute(NESTED_QUERY)
        assert session.execute(NESTED_QUERY).cached
        db.unregister("bib.xml")
        db.register_tree("bib.xml", generate_bib(12, 2, seed=9),
                         dtd_text=BIB_DTD)
        fresh = session.execute(NESTED_QUERY)
        assert fresh.cached is False, \
            "a re-registered document must not serve stale results"
        assert fresh.output != warm.output
        assert session.execute(NESTED_QUERY).cached is True


def test_unregister_evicts_only_referencing_entries(db):
    with db.session() as session:
        session.execute(TITLES_QUERY)            # reads bib.xml
        session.execute(EXISTS_QUERY)            # reads both documents
        assert len(session._result_cache) == 2
        db.unregister("reviews.xml")
        # the exists entry (reads reviews.xml) is gone; the titles
        # entry survives the result cache, though its *plan* entry is
        # epoch-invalidated and recompiles
        assert len(session._result_cache) == 1
        assert session.execute(TITLES_QUERY).cached is True
        with pytest.raises(UnknownDocumentError):
            session.execute(EXISTS_QUERY)


def test_closed_session_detaches_listener(db):
    session = db.session()
    session.execute(TITLES_QUERY)
    session.close()
    db.unregister("bib.xml")                     # must not blow up
    assert session.cache_stats()["result_cache"]["size"] == 0


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_deadline_fires_in_every_mode(db, mode):
    with db.session() as session:
        with pytest.raises(DeadlineExceededError):
            session.execute(NESTED_QUERY, mode=mode, timeout=1e-9,
                            use_result_cache=False)


def test_session_default_timeout_and_override(db):
    with db.session(default_timeout=1e-9) as session:
        with pytest.raises(DeadlineExceededError):
            session.execute(TITLES_QUERY)
        # per-request override lifts the session default
        result = session.execute(TITLES_QUERY, timeout=None)
        assert result.output


def test_deadline_error_is_a_timeout(db):
    with db.session() as session:
        with pytest.raises(TimeoutError):
            session.execute(NESTED_QUERY, timeout=1e-9)


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_concurrent_execution_matches_serial(db):
    """N threads hammering one session with mixed shapes across all
    four modes must produce byte-identical output to serial runs, with
    per-request metrics that never see another request's counters."""
    with db.session() as session:
        serial = {}
        for text in SHAPES:
            for mode in MODES:
                serial[(text, mode)] = session.execute(
                    text, mode=mode, use_result_cache=False).output

        requests = [(text, mode) for text in SHAPES for mode in MODES]
        requests *= 3
        failures: list[str] = []
        barrier = threading.Barrier(8)

        def worker(worker_index: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i, (text, mode) in enumerate(requests):
                    if i % 8 != worker_index:
                        continue
                    metrics = MetricsRegistry()
                    result = session.execute(text, mode=mode,
                                             metrics=metrics,
                                             use_result_cache=False)
                    if result.output != serial[(text, mode)]:
                        failures.append(
                            f"{mode}: output diverged under "
                            "concurrency")
                    plan_events = (
                        metrics.counter("session.plan_cache.hit").value
                        + metrics.counter(
                            "session.plan_cache.miss").value)
                    if plan_events != 1:
                        failures.append(
                            f"{mode}: {plan_events} plan-cache events "
                            "leaked into one request's metrics")
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append(f"worker {worker_index}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures


def test_concurrent_scan_stats_are_request_scoped(db):
    """A request's ScanStats must describe only its own execution —
    the deterministic counters of a small query are identical whether
    it runs alone or concurrently with heavier queries."""
    with db.session() as session:
        alone = session.execute(TITLES_QUERY, use_result_cache=False)
        baseline = dict(alone.stats)
        mismatches: list[dict] = []
        barrier = threading.Barrier(5)

        def small() -> None:
            barrier.wait(timeout=30)
            for _ in range(5):
                stats = dict(session.execute(
                    TITLES_QUERY, use_result_cache=False).stats)
                if stats != baseline:
                    mismatches.append(stats)

        def heavy() -> None:
            barrier.wait(timeout=30)
            for _ in range(3):
                session.execute(NESTED_QUERY, use_result_cache=False)

        threads = [threading.Thread(target=small) for _ in range(2)] \
            + [threading.Thread(target=heavy) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not mismatches, \
            "scan stats cross-contaminated between concurrent requests"


def test_concurrent_cold_prepare_is_safe(db):
    """Two threads racing on a cold shape may both compile; both must
    succeed and later requests must hit one cached entry."""
    with db.session() as session:
        outputs: list[str] = []
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait(timeout=30)
            outputs.append(session.execute(
                NESTED_QUERY, use_result_cache=False).output)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(set(outputs)) == 1
        assert session.prepare(NESTED_QUERY) is \
            session.prepare(NESTED_QUERY)


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------
def test_cache_stats_shape(db):
    with db.session() as session:
        session.execute(TITLES_QUERY)
        session.execute(TITLES_QUERY)
        stats = session.cache_stats()
        assert stats["plan_cache"]["size"] == 1
        assert stats["result_cache"]["hits"] == 1
        assert stats["store_epoch"] == db.store.epoch
