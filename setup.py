"""Setuptools shim.

This environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build; ``python setup.py
develop`` provides the equivalent editable install without wheels.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
