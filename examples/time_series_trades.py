"""Order-preserving unnesting on financial time-series data.

The paper's introduction motivates order-preserving optimization with
"applications dealing with time series, like finance".  This example
builds a trades document whose bidtuple-like entries are in strict
timestamp order and runs a nested query — "for each symbol, the trades
of that symbol, in time order" — through the optimizer.

The point demonstrated: the unnested grouping plan emits, for every
symbol, that symbol's trades in exactly the document (= time) order,
as XQuery semantics requires; an unordered unnesting framework (the
pre-existing object-oriented rewrites the paper extends) cannot promise
this.  The example *checks* the order rather than just claiming it.

Run with::

    python examples/time_series_trades.py
"""

from __future__ import annotations

import random

from repro import Database, compile_query
from repro.xmldb.node import element

TRADES_DTD = """
<!ELEMENT trades (trade*)>
<!ELEMENT trade (symbol, price, volume, time)>
<!ELEMENT symbol (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT time (#PCDATA)>
"""

SYMBOLS = ("NATX", "TMBR", "XQRY", "SALB")

QUERY = """
let $d1 := doc("trades.xml")
for $s1 in distinct-values($d1//symbol)
return
  <tape>
    <symbol> { $s1 } </symbol>
    {
      let $d2 := doc("trades.xml")
      for $t2 in $d2/trade[$s1 = symbol]
      return $t2/time
    }
  </tape>
"""


def generate_trades(n: int = 400, seed: int = 42):
    """A trades tape: one trade per tick, strictly increasing time."""
    rng = random.Random(seed)
    root = element("trades")
    clock = 9 * 3600 + 30 * 60  # 09:30:00
    for _ in range(n):
        clock += rng.randint(1, 5)
        hh, rem = divmod(clock, 3600)
        mm, ss = divmod(rem, 60)
        root.append_child(element(
            "trade",
            element("symbol", rng.choice(SYMBOLS)),
            element("price", f"{rng.uniform(5, 500):.2f}"),
            element("volume", str(rng.randint(100, 5000))),
            element("time", f"{hh:02d}:{mm:02d}:{ss:02d}"),
        ))
    return root


def times_per_symbol(output: str) -> dict[str, list[str]]:
    """Per-symbol sequence of trade times, as constructed in ``output``.

    Keyed by symbol because the *order of the groups* is
    implementation-defined (the paper's ΠD does not preserve order, and
    the group-Ξ plan sorts on the group key); only the order *within*
    each tape is promised by XQuery semantics.
    """
    tapes: dict[str, list[str]] = {}
    for block in output.split("<tape>")[1:]:
        symbol = block.split("<symbol>")[1].split("</symbol>")[0].strip()
        times = []
        rest = block
        while "<time>" in rest:
            _, rest = rest.split("<time>", 1)
            value, rest = rest.split("</time>", 1)
            times.append(value)
        tapes[symbol] = times
    return tapes


def main() -> None:
    db = Database()
    db.register_tree("trades.xml", generate_trades(), dtd_text=TRADES_DTD)

    query = compile_query(QUERY, db)
    print("plan alternatives:",
          [f"{a.label} via {'+'.join(a.applied) or '-'}"
           for a in query.plans()])

    nested = db.execute(query.plan_named("nested").plan)
    best = db.execute(query.best().plan)
    print(f"nested : {nested.elapsed * 1000:8.2f} ms, "
          f"scans={sum(nested.stats['document_scans'].values())}")
    print(f"best   : {best.elapsed * 1000:8.2f} ms, "
          f"scans={sum(best.stats['document_scans'].values())} "
          f"({query.best().label})")

    nested_tapes = times_per_symbol(nested.output)
    best_tapes = times_per_symbol(best.output)
    if nested_tapes != best_tapes:
        raise SystemExit("ERROR: unnested tapes differ from nested!")

    for times in best_tapes.values():
        if times != sorted(times):
            raise SystemExit("ERROR: a tape lost its time order!")
    print(f"verified: {len(best_tapes)} tapes, identical across plans, "
          f"every tape in time order")
    symbol, first = next(iter(best_tapes.items()))
    print(f"example tape {symbol}: {len(first)} trades, "
          f"{first[0]} … {first[-1]}")


if __name__ == "__main__":
    main()
