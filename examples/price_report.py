"""A price report: the library's extensions working together.

Builds the XMP ``prices.xml`` document and produces a report of the
cheapest offer per title, *ordered by price descending* — a query that
combines the paper's Eqv. 3 unnesting with the ``order by`` extension —
then shows the cost-based ranking and an EXPLAIN ANALYZE of the chosen
plan.

Run with::

    python examples/price_report.py
"""

from __future__ import annotations

from repro import Database, compile_query
from repro.datagen import PRICES_DTD, generate_prices
from repro.engine.executor import analyze_to_string

REPORT = """
let $d1 := doc("prices.xml")
for $t1 in distinct-values($d1//book/title)
let $m1 := min(let $d2 := doc("prices.xml")
               for $b2 in $d2//book
               let $t2 := $b2/title
               let $c2 := decimal($b2/price)
               where $t1 = $t2
               return $c2)
order by $m1 descending
return
  <offer>
    <title> { $t1 } </title>
    <best> { $m1 } </best>
  </offer>
"""


def main() -> None:
    db = Database()
    db.register_tree("prices.xml", generate_prices(40, seed=21),
                     dtd_text=PRICES_DTD)

    query = compile_query(REPORT, db, ranking="cost")

    print("=== plan alternatives (cost-ranked) ===")
    for alt in query.plans():
        rules = "+".join(alt.applied) if alt.applied else "-"
        print(f"  {alt.label:<10} [{rules:<12}] "
              f"estimated cost ≈ {alt.cost.total:>10.0f}")
    print()

    best = query.best()
    result = db.execute(best.plan, analyze=True)
    print(f"=== EXPLAIN ANALYZE ({best.label}) ===")
    print(analyze_to_string(best.plan, result))
    print()

    print("=== top of the report (price descending) ===")
    blocks = result.output.split("<offer>")[1:]
    for block in blocks[:5]:
        title = block.split("<title>")[1].split("</title>")[0].strip()
        price = block.split("<best>")[1].split("</best>")[0].strip()
        print(f"  {price:>8}  {title}")
    print(f"  … {len(blocks) - 5} more titles")

    prices = [float(b.split("<best>")[1].split("</best>")[0])
              for b in blocks]
    assert prices == sorted(prices, reverse=True), "report out of order!"
    print()
    nested = db.execute(query.plan_named("nested").plan)
    scans = sum(nested.stats["document_scans"].values())
    best_scans = sum(result.stats["document_scans"].values())
    print(f"document scans: nested plan {scans}, "
          f"chosen plan {best_scans}")


if __name__ == "__main__":
    main()
