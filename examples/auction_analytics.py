"""Auction analytics over the XQuery use case "R" documents.

The paper's §5.6 motivates nested aggregation in the where clause (the
SQL HAVING analogue) on an auction database of users, items and bids.
This example runs three analytics queries and shows, for each, the plan
the optimizer picks and the document-scan savings:

1. popular items — items with at least three bids (paper Q1.4.4.14,
   Eqv. 3: grouping with count);
2. items in demand — items some bid on which exceeds 100
   (existential quantifier, Eqv. 6: semijoin);
3. cautious users — users all of whose bids stay at or below 200
   (universal quantifier, Eqv. 7/9: anti-semijoin or count-grouping).

Run with::

    python examples/auction_analytics.py
"""

from repro import Database, compile_query
from repro.datagen import (
    BIDS_DTD,
    ITEMS_DTD,
    USERS_DTD,
    generate_bids,
    generate_items,
    generate_users,
)

POPULAR_ITEMS = """
let $d1 := document("bids.xml")
for $i1 in distinct-values($d1//itemno)
where count($d1//bidtuple[itemno = $i1]) >= 3
return
  <popular-item> { $i1 } </popular-item>
"""

ITEMS_IN_DEMAND = """
let $d1 := document("items.xml")
for $i1 in $d1//itemtuple/itemno
where some $b2 in document("bids.xml")//bidtuple[itemno = $i1]
      satisfies $b2/bid > 100
return
  <in-demand> { $i1 } </in-demand>
"""

CAUTIOUS_USERS = """
let $d1 := document("users.xml")
for $u1 in $d1//usertuple/userid
where every $b2 in document("bids.xml")//bidtuple[userid = $u1]
      satisfies $b2/bid <= 200
return
  <cautious-user> { $u1 } </cautious-user>
"""


def build_database(bids: int = 120, seed: int = 11) -> Database:
    db = Database()
    items = max(1, bids // 5)
    db.register_tree("bids.xml", generate_bids(bids, items=items,
                                               seed=seed),
                     dtd_text=BIDS_DTD)
    db.register_tree("items.xml", generate_items(items, seed=seed),
                     dtd_text=ITEMS_DTD)
    db.register_tree("users.xml", generate_users(60, seed=seed),
                     dtd_text=USERS_DTD)
    return db


def run(db: Database, title: str, text: str,
        show_rows: int = 4) -> None:
    query = compile_query(text, db)
    print(f"=== {title} ===")
    for alt in query.plans():
        result = db.execute(alt.plan)
        rules = "+".join(alt.applied) if alt.applied else "-"
        scans = sum(result.stats["document_scans"].values())
        print(f"  {alt.label:<10} [{rules:<18}] "
              f"{result.elapsed * 1000:8.2f} ms  scans={scans}")
    best = db.execute(query.best().plan)
    lines = [line for line in best.output.replace("><", ">\n<")
             .splitlines() if line.strip()]
    for line in lines[:show_rows]:
        print(f"    {line}")
    if len(lines) > show_rows:
        print(f"    … {len(lines) - show_rows} more rows")
    print()


def main() -> None:
    db = build_database()
    run(db, "popular items (>= 3 bids)", POPULAR_ITEMS)
    run(db, "items in demand (some bid > 100)", ITEMS_IN_DEMAND)
    run(db, "cautious users (every bid <= 200)", CAUTIOUS_USERS)


if __name__ == "__main__":
    main()
