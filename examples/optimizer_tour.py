"""A tour of the paper's nine unnesting equivalences.

For each equivalence of Fig. 4 (plus Eqv. 8/9) this example shows a
query that triggers it, the plan before and after, and — for the side
conditions — a counter-example where the optimizer must *refuse* the
rewrite (the DBLP case of §5.1, the missing condition in Paparizos et
al. that the paper corrects).

Three final sections show the other engine axes this repository adds:

- access-path selection — the same query explained against a store
  without indexes (every leaf is a document scan) and against one with
  ``index_mode="eager"``, where the cost model swaps the scan for an
  ``IdxScan`` value-index probe — zero document scans at execution time;
- execution modes — the same exists-query run under ``mode="physical"``
  and ``mode="pipelined"``, with the scan statistics and per-operator
  EXPLAIN ANALYZE row counts side by side (the full mode decision
  table, including ``vectorized`` and ``auto``, lives in
  ``docs/execution-modes.md``);
- arena storage — registered documents are finalized into an
  interval-encoded arena (pre/post/level columns, interned tag names),
  so a ``//tag`` step is a binary search over a contiguous row range;
  the section prints the arena's statistics and the same descendant
  query's EXPLAIN ANALYZE under the range scan vs. the legacy pointer
  walk.

Run with::

    python examples/optimizer_tour.py
"""

from __future__ import annotations

from repro import Database, compile_query
from repro.datagen import (
    BIB_DTD,
    BIDS_DTD,
    DBLP_DTD,
    PRICES_DTD,
    REVIEWS_DTD,
    generate_bib,
    generate_bids,
    generate_dblp,
    generate_prices,
    generate_reviews,
)

SEPARATOR = "-" * 68


def show(title: str, db: Database, text: str, note: str = "") -> None:
    query = compile_query(text, db)
    print(SEPARATOR)
    print(title)
    if note:
        print(f"  note: {note}")
    labels = [(a.label, "+".join(a.applied) or "-") for a in query.plans()]
    print(f"  alternatives: {labels}")
    best = query.best()
    nested = db.execute(query.plan_named("nested").plan)
    chosen = db.execute(best.plan)
    print(f"  nested plan : "
          f"{sum(nested.stats['document_scans'].values())} document scans")
    print(f"  chosen plan : {best.label}, "
          f"{sum(chosen.stats['document_scans'].values())} document scans")
    print()


def main() -> None:
    bib_db = Database()
    bib_db.register_tree("bib.xml", generate_bib(60, 2, seed=3),
                         dtd_text=BIB_DTD)
    bib_db.register_tree("reviews.xml", generate_reviews(30, seed=3),
                         dtd_text=REVIEWS_DTD)

    prices_db = Database()
    prices_db.register_tree("prices.xml", generate_prices(60, seed=3),
                            dtd_text=PRICES_DTD)

    bids_db = Database()
    bids_db.register_tree("bids.xml", generate_bids(100, items=20,
                                                    seed=3),
                          dtd_text=BIDS_DTD)

    dblp_db = Database()
    dblp_db.register_tree("bib.xml", generate_dblp(40, 120, seed=3),
                          dtd_text=DBLP_DTD)

    # Eqv. 1 (binary grouping / nest-join) + Eqv. 2 (outer join) +
    # Eqv. 3 (unary grouping): a θ-correlated aggregate.  All three
    # apply; 3 wins because titles occur only under book.
    show("Eqv. 1/2/3 — correlated aggregate (min price per title)",
         prices_db, """
let $d1 := doc("prices.xml")
for $t1 in distinct-values($d1//book/title)
let $m1 := min(for $b2 in doc("prices.xml")//book
               let $t2 := $b2/title
               let $p2 := decimal($b2/price)
               where $t1 = $t2
               return $p2)
return <minprice title="{ $t1 }"><price> { $m1 } </price></minprice>
""")

    # Eqv. 4 (outer join over membership) + Eqv. 5 (grouping over
    # membership): the correlation '$a1 = author' is existential
    # because books have several authors.
    show("Eqv. 4/5 — membership correlation (books per author)",
         bib_db, """
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name> { $a1 } </name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2/book[$a1 = author]
    return $b2/title }
  </author>
""")

    # The DBLP counter-example: articles also have authors, so
    # e1 (all authors) != authors-of-books and Eqv. 5 must be refused;
    # Eqv. 4 (outer join) remains, exactly as in §5.1's DBLP paragraph.
    show("Eqv. 5 refused on DBLP-shaped data (the Paparizos condition)",
         dblp_db, """
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name> { $a1 } </name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2/book[$a1 = author]
    return $b2/title }
  </author>
""", note="grouping must NOT appear among the alternatives")

    # Eqv. 6: existential quantifier -> order-preserving semijoin.
    show("Eqv. 6 — existential quantifier (books with a review)",
         bib_db, """
let $d1 := document("bib.xml")
for $t1 in $d1//book/title
where some $t2 in document("reviews.xml")//entry/title
      satisfies $t1 = $t2
return <book-with-review> { $t1 } </book-with-review>
""")

    # Eqv. 7 + Eqv. 9: universal quantifier -> anti-semijoin; with the
    # schema condition, the count-based grouping that saves a scan.
    show("Eqv. 7/9 — universal quantifier (authors all after 1993)",
         bib_db, """
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where every $b2 in doc("bib.xml")//book[author = $a1]
      satisfies $b2/@year > 1993
return <new-author> { $a1 } </new-author>
""")

    # Eqv. 8: existential via exists() on a self-correlation -> the
    # count-grouping plan that scans the document once.
    show("Eqv. 6/8 — exists() self-correlation (authors of Suciu books)",
         bib_db, """
let $d1 := doc("bib.xml")
for $b1 in $d1//book, $a1 in $b1/author
where exists(for $b2 in $d1//book, $a2 in $b2/author
             where contains($a2, "Ullman") and $b1 = $b2
             return $b2)
return <book> { $a1 } </book>
""")

    # Eqv. 3 again, in its having-clause shape (§5.6).
    show("Eqv. 3 — aggregation in the where clause (popular items)",
         bids_db, """
let $d1 := document("bids.xml")
for $i1 in distinct-values($d1//itemno)
where count($d1//bidtuple[itemno = $i1]) >= 3
return <popular-item> { $i1 } </popular-item>
""")

    show_access_paths()
    show_pipelined_execution()
    show_arena_storage()
    show_order_properties()
    show_observability()


def show_access_paths() -> None:
    """The same query planned without and with indexes: the plan texts
    differ in exactly one leaf (scan → IdxScan) and the executed scan
    statistics move from document_scans to index_probes."""
    from repro.datagen import ITEMS_DTD, generate_items

    query_text = """
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice > 400
return <expensive> { $i1/itemno } </expensive>
"""
    print(SEPARATOR)
    print("Access-path selection — scans vs. index probes")
    for mode in ("off", "eager"):
        db = Database(index_mode=mode)
        db.register_tree("items.xml", generate_items(120, seed=3),
                         dtd_text=ITEMS_DTD)
        query = compile_query(query_text, db)
        best = query.best()
        result = db.execute(best.plan)
        print(f"  index_mode={mode!r}: best plan is {best.label!r}")
        for line in query.explain(best.label).splitlines():
            print(f"    {line}")
        print(f"    stats: document_scans="
              f"{result.stats['document_scans']} "
              f"index_probes={result.stats['index_probes']} "
              f"node_visits={result.stats['node_visits']}")
    print()


def show_pipelined_execution() -> None:
    """The same exists-query executed by the materializing physical
    engine and by the pipelined engine: identical output, but the
    pipelined run stops each inner scan at the first witness — compare
    the node visits and the per-operator row counts."""
    from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
        generate_items
    from repro.engine.executor import analyze_to_string

    query_text = """
let $d1 := doc("items.xml")
for $i1 in $d1/items/itemtuple
where exists(
  for $b2 in doc("bids.xml")/bids/bidtuple
  where $b2/itemno = $i1/itemno
  return $b2)
return <hot-item> { $i1/itemno } </hot-item>
"""
    db = Database()
    db.register_tree("bids.xml", generate_bids(600, items=20, seed=3),
                     dtd_text=BIDS_DTD)
    db.register_tree("items.xml", generate_items(20, seed=3),
                     dtd_text=ITEMS_DTD)
    query = compile_query(query_text, db)
    plan = query.plan_named("nested").plan
    print(SEPARATOR)
    print("Pipelined execution — first-witness vs. all-tuples cost")
    outputs = {}
    for mode in ("physical", "pipelined"):
        result = db.execute(plan, mode=mode, analyze=True)
        outputs[mode] = result.output
        print(f"  mode={mode!r}: {result.elapsed:.4f}s, "
              f"node_visits={result.stats['node_visits']}, "
              f"document_scans="
              f"{sum(result.stats['document_scans'].values())}")
        for line in analyze_to_string(plan, result).splitlines():
            print(f"    {line}")
    assert outputs["physical"] == outputs["pipelined"]
    print("  outputs are byte-identical; the pipelined run stopped each"
          " inner bid scan at the first witness.")
    print()


def show_arena_storage() -> None:
    """The interval-encoded document store: registration freezes the
    tree into struct-of-arrays columns with pre/post/level numbering,
    so structural containment is one integer comparison and every
    ``//tag`` step is a binary search plus a contiguous range scan
    over exactly the matching rows — compare the node visits in the
    two EXPLAIN ANALYZE runs below (same plan, same documents; the
    ``walk`` run disables arena acceleration, which is the legacy
    object-graph behaviour)."""
    from repro.datagen import ITEMS_DTD, generate_items
    from repro.engine.executor import analyze_to_string
    from repro.xmldb import arena

    db = Database()
    db.register_tree("items.xml", generate_items(300, seed=3),
                     dtd_text=ITEMS_DTD)
    document = db.store.get("items.xml")
    stats = document.arena.stats()
    print(SEPARATOR)
    print("Arena storage — interval-encoded descendant range scans")
    print(f"  arena of 'items.xml': {stats['rows']} rows "
          f"({stats['kinds']['element']} elements, "
          f"{stats['kinds']['text']} text), "
          f"{stats['distinct_names']} interned names, "
          f"max depth {stats['max_depth']}")
    top_tags = list(stats["tag_counts"].items())[:4]
    print(f"  tag counts (top): "
          + ", ".join(f"{t}={c}" for t, c in top_tags))
    query = compile_query("""
let $d1 := doc("items.xml")
for $r1 in $d1//reserveprice
where $r1 >= 400
return <pricey> { $r1 } </pricey>
""", db)
    plan = query.best().plan
    outputs = {}
    for label, accelerated in (("walk (pointer-chasing baseline)",
                                False),
                               ("arena (range scan)", True)):
        with arena.acceleration(accelerated):
            result = db.execute(plan, analyze=True)
        outputs[label] = result.output
        print(f"  {label}: {result.elapsed:.4f}s, "
              f"node_visits={result.stats['node_visits']}")
        for line in analyze_to_string(plan, result).splitlines():
            print(f"    {line}")
    assert len(set(outputs.values())) == 1
    print("  outputs are byte-identical; the range scan touched only"
          " the reserveprice rows inside the scanned interval.")
    print()


def show_order_properties() -> None:
    """Sort elision: the order-property subsystem annotates every
    operator with what is already known about its output order —
    sources read arena guarantees, σ/Π/χ preserve, Sort/ΠD establish —
    and removes Sorts whose requirement provably holds.  The auction's
    itemno column is non-decreasing in document order (a fact the
    optimizer *checks once* against the frozen document and caches),
    so ``order by $i/itemno`` compiles to a ``Sort[elided: …]`` no-op;
    the same analysis lets the XPath evaluator skip its dedup-sort
    pass on provably ordered step sequences.  Set
    ``REPRO_ORDER_DEBUG=1`` (or ``properties.debug_checks(True)``) to
    have both engines re-verify every elided sort differentially at
    runtime."""
    from repro.datagen import ITEMS_DTD, generate_items
    from repro.optimizer import properties
    from repro.optimizer.properties import properties_to_string

    db = Database()
    db.register_tree("items.xml", generate_items(300, seed=3),
                     dtd_text=ITEMS_DTD)
    text = """
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
let $n1 := zero-or-one($i1/itemno)
order by $n1
return <item>{ $n1 }</item>
"""
    print(SEPARATOR)
    print("Order properties — sort elision over proven document order")
    outputs = {}
    for label, enabled in (("forced sorts (elision off)", False),
                           ("elided (order subsystem on)", True)):
        with properties.elision(enabled):
            query = compile_query(text, db)
            plan = query.plan_named("nested").plan
            result = db.execute(plan)
        outputs[label] = result.output
        print(f"  {label}: {result.elapsed:.4f}s")
        for line in properties_to_string(plan, db.store).splitlines():
            print(f"    {line}")
    assert len(set(outputs.values())) == 1
    print("  outputs are byte-identical: a stable sort over an input"
          " the inference proved")
    print("  already sorted is the identity — the elided plan just"
          " stopped paying for it.")
    print()


def show_observability() -> None:
    """The same machinery the CLI's ``trace`` subcommand and
    ``--timing`` flag use: one trace covering the whole query
    lifecycle, one request-scoped metrics registry."""
    from repro.api import trace_query
    from repro.datagen import ITEMS_DTD, generate_items

    db = Database()
    db.register_tree("items.xml", generate_items(50, seed=3),
                     dtd_text=ITEMS_DTD)
    text = """
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice > 300
return <pricey>{ $i1/itemno }</pricey>
"""
    print(SEPARATOR)
    print("Observability — lifecycle trace and per-operator metrics")
    print("(`python -m repro trace query.xq --docs … --out trace.json`"
          " from the CLI)")
    alt, result = trace_query(text, db, mode="pipelined")
    print(f"  plan: {alt.label}, {len(result.rows)} rows")
    for line in result.trace.to_pretty().splitlines():
        print(f"  {line}")
    print("  -- request-scoped metrics --")
    for line in result.metrics.to_pretty().splitlines():
        print(f"  {line}")
    print("  result.trace.chrome_json() exports the same spans as")
    print("  Chrome trace_event JSON for chrome://tracing / Perfetto.")
    print()


if __name__ == "__main__":
    main()
