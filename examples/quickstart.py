"""Quickstart: compile, unnest and run a nested XQuery.

Reproduces the paper's opening example (§5.1, XMP use case Q1.1.9.4):
books grouped by author.  The query nests a FLWR expression inside the
return clause; evaluated naively, the inner block rescans ``bib.xml``
once per author.  The optimizer rewrites it — order-preservingly — into
a single-scan grouping plan.

Run with::

    python examples/quickstart.py
"""

from repro import Database, compile_query

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher><price>39.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price>
  </book>
</bib>
"""

BIB_DTD = """
<!ELEMENT bib (book*)>
<!ELEMENT book (title, (author+ | editor+), publisher, price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT author (last, first)>
<!ELEMENT editor (last, first, affiliation)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""

QUERY = """
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author>
    <name> { $a1 } </name>
    {
      let $d2 := doc("bib.xml")
      for $b2 in $d2/book[$a1 = author]
      return $b2/title
    }
  </author>
"""


def main() -> None:
    db = Database()
    db.register_text("bib.xml", BIB, dtd_text=BIB_DTD)

    query = compile_query(QUERY, db)

    print("=== nested (translated) plan ===")
    print(query.explain())

    print("=== plan alternatives, best first ===")
    for alt in query.plans():
        rules = "+".join(alt.applied) if alt.applied else "(none)"
        print(f"  {alt.label:<10} via {rules}")
    print()

    for label in ("nested", query.best().label):
        result = db.execute(query.plan_named(label).plan)
        scans = result.stats["document_scans"]
        print(f"--- {label}: {result.elapsed * 1000:.2f} ms, "
              f"document scans {scans} ---")

    print()
    print("=== query result (best plan) ===")
    print(db.execute(query.best().plan).output)


if __name__ == "__main__":
    main()
