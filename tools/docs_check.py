#!/usr/bin/env python
"""Documentation lint: module docstrings and docs/ link integrity.

Two checks, both cheap enough to run on every CI push (the
``docs-check`` job, also ``make docs-check``):

1. **Module docstrings** — every module under ``src/repro/`` must open
   with a module docstring.  The docstrings are the architecture
   documentation's ground truth (``docs/architecture.md`` points into
   them), so a silent docstring-less module is a documentation hole.
2. **Intra-repo links** — every relative markdown link in ``docs/*.md``
   and ``README.md`` must resolve to an existing file (anchors are
   checked against the target's headings).  External ``http(s)://``
   links are not touched — CI must not depend on the network.

Exits non-zero listing every violation; prints a one-line summary when
clean.  No dependencies beyond the standard library.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target) — images excluded via (?<!\!)
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"^(```|~~~).*?^\1", re.MULTILINE | re.DOTALL)
_CODE_SPAN = re.compile(r"`[^`\n]*`")


def _strip_code(text: str) -> str:
    """Blank out fenced blocks and inline code spans — NAL algebra
    notation like ``σ[p](χ[a](E))`` would otherwise parse as links."""
    return _CODE_SPAN.sub("", _FENCE.sub("", text))


def check_docstrings(src_root: pathlib.Path) -> list[str]:
    problems = []
    for path in sorted(src_root.rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:  # pragma: no cover - tests gate this
            problems.append(f"{path.relative_to(REPO_ROOT)}: "
                            f"does not parse: {exc}")
            continue
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            problems.append(f"{path.relative_to(REPO_ROOT)}: "
                            "missing module docstring")
    return problems


def _anchor_slug(heading: str) -> str:
    """GitHub-style anchor for a heading: lowercase, spaces to dashes,
    punctuation dropped."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"[\s]+", "-", slug)


def _anchors_of(path: pathlib.Path) -> set[str]:
    return {_anchor_slug(m.group(1))
            for m in _HEADING.finditer(path.read_text(encoding="utf-8"))}


def check_links(doc_paths: list[pathlib.Path]) -> list[str]:
    problems = []
    for doc in doc_paths:
        text = _strip_code(doc.read_text(encoding="utf-8"))
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if not file_part:  # same-document anchor
                resolved = doc
            else:
                resolved = (doc.parent / file_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{doc.relative_to(REPO_ROOT)}: dead link "
                        f"{target!r} ({file_part} does not exist)")
                    continue
            if anchor and resolved.suffix == ".md":
                if _anchor_slug(anchor) not in _anchors_of(resolved):
                    problems.append(
                        f"{doc.relative_to(REPO_ROOT)}: dead anchor "
                        f"{target!r} (no such heading in "
                        f"{resolved.name})")
    return problems


def main() -> int:
    problems = check_docstrings(REPO_ROOT / "src" / "repro")
    docs = sorted((REPO_ROOT / "docs").glob("*.md")) \
        if (REPO_ROOT / "docs").is_dir() else []
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        docs.append(readme)
    problems += check_links(docs)
    if problems:
        print("docs-check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    modules = len(list((REPO_ROOT / 'src' / 'repro').rglob('*.py')))
    print(f"docs-check passed ({modules} modules, "
          f"{len(docs)} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
