"""E2 — §5.2 table (Aggregation, XMP Q1.1.9.10).

min(price) per title over prices.xml.  Paper: nested 0.09/1.81/173.51 s
at 100/1000/10000 books, grouping plan (Eqv. 3) 0.07/0.08/0.19 s.
"""

from __future__ import annotations

import pytest

from conftest import LINEAR_SIZES, SIZES, compiled_plan, run_plan


@pytest.mark.parametrize("books", SIZES)
@pytest.mark.parametrize("plan", ("nested", "grouping"))
def test_q2_by_size(benchmark, plan, books):
    db, compiled = compiled_plan("q2", plan, books=books)
    benchmark.group = f"q2 aggregation, books={books}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("books", LINEAR_SIZES)
def test_q2_grouping_scaling(benchmark, books):
    db, compiled = compiled_plan("q2", "grouping", books=books)
    benchmark.group = f"q2 grouping scaling, books={books}"
    benchmark(run_plan, db, compiled)
