"""E9 — arena storage: interval-encoded descendant axes vs. tree walks.

Not a paper table: this measures the storage-layer refactor itself.
Registered documents are finalized into an interval-encoded arena
(pre/post/level columns with per-tag row lists), so a ``//tag`` step is
a binary search plus a contiguous slice over exactly the result rows.
The baseline — toggled via ``repro.xmldb.arena.acceleration(False)`` on
the *same* documents and plans — is the pointer-chasing recursive walk
the object-graph storage used, which touches every element and text
node of the document per descendant step.

Q9 is a descendant-heavy auction digest: four ``//tag`` aggregations
over items.xml and bids.xml (every leg scans a whole document in the
baseline), plus a selective reserve-price filter reported alongside::

    PYTHONPATH=src python benchmarks/bench_q9_storage.py \\
        [items] [bids] [out.json]

which asserts the ≥5× speedup this PR's acceptance criterion names
(comfortably >10× at the default 4000 items × 20000 bids).
"""

from __future__ import annotations

import sys

import pytest

from repro.api import CompiledQuery, Database, compile_query
from repro.bench.harness import write_json
from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
    generate_items
from repro.xmldb import arena

Q9_DIGEST = '''
let $d1 := doc("items.xml")
let $b1 := doc("bids.xml")
return
  <digest>
    <items>{ count($d1//itemno) }</items>
    <bids>{ count($b1//bid) }</bids>
    <bid-days>{ count($b1//biddate) }</bid-days>
    <reserve-prices>{ count($d1//reserveprice) }</reserve-prices>
  </digest>
'''

Q9_FILTER = '''
let $d1 := doc("items.xml")
for $r1 in $d1//reserveprice
where $r1 >= 400
return <pricey> { $r1 } </pricey>
'''

SIZES = ((500, 2500), (2000, 10000))

_CACHE: dict[tuple[int, int], Database] = {}


def database(items: int, bids: int, seed: int = 7) -> Database:
    key = (items, bids)
    if key not in _CACHE:
        db = Database()
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        db.register_tree("bids.xml",
                         generate_bids(bids, items=items, seed=seed),
                         dtd_text=BIDS_DTD)
        _CACHE[key] = db
    return _CACHE[key]


def compiled(db: Database, text: str) -> CompiledQuery:
    return compile_query(text, db)


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("accelerated", (False, True),
                         ids=("walk", "arena"))
def test_q9_by_size(benchmark, accelerated, items, bids):
    db = database(items, bids)
    plan = compiled(db, Q9_DIGEST).best().plan
    benchmark.group = f"q9 storage, items={items} bids={bids}"

    def run():
        with arena.acceleration(accelerated):
            return db.execute(plan).output

    benchmark(run)


def _best_of(db: Database, plan, accelerated: bool,
             repeat: int) -> tuple[float, object]:
    elapsed = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        with arena.acceleration(accelerated):
            result = db.execute(plan)
        elapsed = min(elapsed, result.elapsed)
    return elapsed, result


def speedup_at(items: int, bids: int, query_text: str, label: str,
               repeat: int = 3, seed: int = 7) -> dict:
    """Time one query with and without arena acceleration; identical
    documents, identical plan, byte-identical output required."""
    db = database(items, bids, seed=seed)
    plan = compiled(db, query_text).best().plan
    walk_s, walk_result = _best_of(db, plan, False, repeat)
    arena_s, arena_result = _best_of(db, plan, True, repeat)
    assert arena_result.output == walk_result.output, \
        "arena range scans must be byte-identical to tree walks"
    return {
        "query": label,
        "items": items,
        "bids": bids,
        "walk_seconds": walk_s,
        "arena_seconds": arena_s,
        "speedup": walk_s / arena_s if arena_s else float("inf"),
        "walk_node_visits": walk_result.stats["node_visits"],
        "arena_node_visits": arena_result.stats["node_visits"],
    }


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 4000
    bids = int(argv[1]) if len(argv) > 1 else items * 5
    rows = [speedup_at(items, bids, Q9_DIGEST, "q9_digest"),
            speedup_at(items, bids, Q9_FILTER, "q9_filter")]
    print(f"Q9 (arena storage), items={items}, bids={bids}")
    for row in rows:
        print(f"  {row['query']}:")
        print(f"    walk  : {row['walk_seconds']:.4f}s "
              f"({row['walk_node_visits']} node visits)")
        print(f"    arena : {row['arena_seconds']:.4f}s "
              f"({row['arena_node_visits']} node visits)")
        print(f"    speedup: {row['speedup']:.1f}x")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q9_storage": rows}})
        print(f"  JSON written to {argv[2]}")
    digest = rows[0]
    assert digest["speedup"] >= 5.0, \
        f"expected >=5x speedup, got {digest['speedup']:.1f}x"
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
