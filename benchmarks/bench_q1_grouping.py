"""E1 — §5.1 table (Grouping, XMP Q1.1.9.4).

Paper table: evaluation time of the nested, outer-join (Eqv. 4),
grouping (Eqv. 5) and group-Ξ plans over bib.xml with 100/1000/10000
books and 2/5/10 authors per book.  Paper shape: nested is quadratic
(0.15 s → 788 s over 100×), the three unnested plans are linear and
ordered group-Ξ < grouping < outer join.
"""

from __future__ import annotations

import pytest

from conftest import LINEAR_SIZES, SIZES, compiled_plan, run_plan

PLANS = ("nested", "outerjoin", "grouping", "group-xi")


@pytest.mark.parametrize("books", SIZES)
@pytest.mark.parametrize("plan", PLANS)
def test_q1_by_size(benchmark, plan, books):
    db, compiled = compiled_plan("q1", plan, books=books,
                                 authors_per_book=2)
    benchmark.group = f"q1 grouping, books={books}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("authors", (2, 5, 10))
@pytest.mark.parametrize("plan", PLANS[1:])  # nested×10 authors is slow
def test_q1_by_group_size(benchmark, plan, authors):
    db, compiled = compiled_plan("q1", plan, books=100,
                                 authors_per_book=authors)
    benchmark.group = f"q1 grouping, authors/book={authors}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("books", LINEAR_SIZES)
@pytest.mark.parametrize("plan", PLANS[1:])
def test_q1_unnested_scaling(benchmark, plan, books):
    """Linear scaling of the unnested plans (paper: 0.08→0.57 s over
    100×, i.e. ~linear; nested grows ~5000×)."""
    db, compiled = compiled_plan("q1", plan, books=books,
                                 authors_per_book=2)
    benchmark.group = f"q1 unnested scaling, books={books}"
    benchmark(run_plan, db, compiled)
