"""E3 — §5.3 table (Existential quantification I, XMP Q1.1.9.5).

Books having a review, expressed with ``some … satisfies``.  Paper:
nested 0.10/1.83/175.80 s, semijoin plan (Eqv. 6) 0.08/0.09/0.20 s.
"""

from __future__ import annotations

import pytest

from conftest import LINEAR_SIZES, SIZES, compiled_plan, run_plan


@pytest.mark.parametrize("books", SIZES)
@pytest.mark.parametrize("plan", ("nested", "semijoin"))
def test_q3_by_size(benchmark, plan, books):
    db, compiled = compiled_plan("q3", plan, books=books)
    benchmark.group = f"q3 exists, books={books}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("books", LINEAR_SIZES)
def test_q3_semijoin_scaling(benchmark, books):
    db, compiled = compiled_plan("q3", "semijoin", books=books)
    benchmark.group = f"q3 semijoin scaling, books={books}"
    benchmark(run_plan, db, compiled)
