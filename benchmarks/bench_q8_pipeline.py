"""E8 — pipelined execution: short-circuit exists over the auction data.

Not a paper table: the paper's engine (Natix) pipelines its operators,
so its nested-plan timings already include first-witness semantics; our
materializing physical engine pays all-tuples cost per outer tuple
instead.  Q8 asks, per auction item, whether *any* bid exists for it:

    for $i1 in doc("items.xml")/items/itemtuple
    where exists(for $b2 in doc("bids.xml")/bids/bidtuple
                 where $b2/itemno = $i1/itemno return $b2) ...

Under ``mode="physical"`` the nested plan filters and materializes all
bids per item before ``exists()`` looks at the result; under
``mode="pipelined"`` the same plan stops at the first matching bid —
first-witness instead of all-tuples cost, with the inner document walk
itself stopping early (node visits drop by the same factor).  Run
directly for the speedup check at scale::

    PYTHONPATH=src python benchmarks/bench_q8_pipeline.py \\
        [items] [bids] [out.json]

which asserts the ≥5× speedup this PR's acceptance criterion names
(comfortably >40× at the default 60 items × 3000 bids).
"""

from __future__ import annotations

import sys

import pytest

from repro.api import CompiledQuery, Database, compile_query
from repro.bench.harness import time_plan, write_json
from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
    generate_items

Q8_EXISTS = '''
let $d1 := doc("items.xml")
for $i1 in $d1/items/itemtuple
where exists(
  for $b2 in doc("bids.xml")/bids/bidtuple
  where $b2/itemno = $i1/itemno
  return $b2)
return
  <hot-item>
    { $i1/itemno }
  </hot-item>
'''

SIZES = ((10, 200), (20, 1000))

_CACHE: dict[tuple[int, int], tuple[Database, CompiledQuery]] = {}


def compiled(items: int, bids: int,
             seed: int = 7) -> tuple[Database, CompiledQuery]:
    key = (items, bids)
    if key not in _CACHE:
        db = Database()
        db.register_tree("bids.xml",
                         generate_bids(bids, items=items, seed=seed),
                         dtd_text=BIDS_DTD)
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        _CACHE[key] = (db, compile_query(Q8_EXISTS, db))
    return _CACHE[key]


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("mode", ("physical", "pipelined"))
def test_q8_by_size(benchmark, mode, items, bids):
    db, query = compiled(items, bids)
    plan = query.plan_named("nested").plan
    benchmark.group = f"q8 exists, items={items} bids={bids}"
    benchmark(lambda: db.execute(plan, mode=mode).output)


def speedup_at(items: int, bids: int, repeat: int = 3,
               seed: int = 7) -> dict:
    """Measure physical vs pipelined at one scale; returns the
    comparison."""
    db, query = compiled(items, bids, seed=seed)
    plan = query.plan_named("nested").plan
    physical_result = db.execute(plan, mode="physical")
    pipelined_result = db.execute(plan, mode="pipelined")
    assert pipelined_result.output == physical_result.output, \
        "pipelined mode must be byte-identical to physical mode"
    physical_s = min(time_plan(db, plan, repeat=repeat),
                     physical_result.elapsed)
    pipelined_s = float("inf")
    for _ in range(max(1, repeat)):
        pipelined_s = min(pipelined_s,
                          db.execute(plan, mode="pipelined").elapsed)
    return {
        "items": items,
        "bids": bids,
        "hot_items": pipelined_result.output.count("<hot-item>"),
        "physical_seconds": physical_s,
        "pipelined_seconds": pipelined_s,
        "speedup": physical_s / pipelined_s if pipelined_s
        else float("inf"),
        "physical_node_visits": physical_result.stats["node_visits"],
        "pipelined_node_visits": pipelined_result.stats["node_visits"],
    }


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 60
    bids = int(argv[1]) if len(argv) > 1 else items * 50
    comparison = speedup_at(items, bids)
    print(f"Q8 (short-circuit exists), items={items}, bids={bids}, "
          f"hot items={comparison['hot_items']}")
    print(f"  physical  : {comparison['physical_seconds']:.4f}s "
          f"({comparison['physical_node_visits']} node visits)")
    print(f"  pipelined : {comparison['pipelined_seconds']:.4f}s "
          f"({comparison['pipelined_node_visits']} node visits)")
    print(f"  speedup   : {comparison['speedup']:.1f}x")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q8_pipeline": [comparison]}})
        print(f"  JSON written to {argv[2]}")
    assert comparison["speedup"] >= 5.0, \
        f"expected >=5x speedup, got {comparison['speedup']:.1f}x"
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
