"""E8 — pipelined execution: short-circuit exists over the auction data.

Not a paper table: the paper's engine (Natix) pipelines its operators,
so its nested-plan timings already include first-witness semantics; our
materializing physical engine pays all-tuples cost per outer tuple
instead.  Q8 asks, per auction item, whether *any* bid exists for it:

    for $i1 in doc("items.xml")/items/itemtuple
    where exists(for $b2 in doc("bids.xml")/bids/bidtuple
                 where $b2/itemno = $i1/itemno return $b2) ...

Under ``mode="physical"`` the nested plan filters and materializes all
bids per item before ``exists()`` looks at the result; under
``mode="pipelined"`` the same plan stops at the first matching bid —
first-witness instead of all-tuples cost, with the inner document walk
itself stopping early (node visits drop by the same factor).  Run
directly for the speedup check at scale::

    PYTHONPATH=src python benchmarks/bench_q8_pipeline.py \\
        [items] [bids] [out.json]

which asserts the ≥5× speedup this PR's acceptance criterion names
(comfortably >40× at the default 60 items × 3000 bids).
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.api import CompiledQuery, Database, compile_query
from repro.bench.harness import time_plan, write_json
from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
    generate_items
from repro.engine.context import EvalContext
from repro.engine.pipeline import run_pipelined

Q8_EXISTS = '''
let $d1 := doc("items.xml")
for $i1 in $d1/items/itemtuple
where exists(
  for $b2 in doc("bids.xml")/bids/bidtuple
  where $b2/itemno = $i1/itemno
  return $b2)
return
  <hot-item>
    { $i1/itemno }
  </hot-item>
'''

SIZES = ((10, 200), (20, 1000))

_CACHE: dict[tuple[int, int], tuple[Database, CompiledQuery]] = {}


def compiled(items: int, bids: int,
             seed: int = 7) -> tuple[Database, CompiledQuery]:
    key = (items, bids)
    if key not in _CACHE:
        db = Database()
        db.register_tree("bids.xml",
                         generate_bids(bids, items=items, seed=seed),
                         dtd_text=BIDS_DTD)
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        _CACHE[key] = (db, compile_query(Q8_EXISTS, db))
    return _CACHE[key]


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("mode", ("physical", "pipelined"))
def test_q8_by_size(benchmark, mode, items, bids):
    db, query = compiled(items, bids)
    plan = query.plan_named("nested").plan
    benchmark.group = f"q8 exists, items={items} bids={bids}"
    benchmark(lambda: db.execute(plan, mode=mode).output)


def speedup_at(items: int, bids: int, repeat: int = 3,
               seed: int = 7) -> dict:
    """Measure physical vs pipelined at one scale; returns the
    comparison."""
    db, query = compiled(items, bids, seed=seed)
    plan = query.plan_named("nested").plan
    physical_result = db.execute(plan, mode="physical")
    pipelined_result = db.execute(plan, mode="pipelined")
    assert pipelined_result.output == physical_result.output, \
        "pipelined mode must be byte-identical to physical mode"
    physical_s = min(time_plan(db, plan, repeat=repeat),
                     physical_result.elapsed)
    pipelined_s = float("inf")
    for _ in range(max(1, repeat)):
        pipelined_s = min(pipelined_s,
                          db.execute(plan, mode="pipelined").elapsed)
    return {
        "items": items,
        "bids": bids,
        "hot_items": pipelined_result.output.count("<hot-item>"),
        "physical_seconds": physical_s,
        "pipelined_seconds": pipelined_s,
        "speedup": physical_s / pipelined_s if pipelined_s
        else float("inf"),
        "physical_node_visits": physical_result.stats["node_visits"],
        "pipelined_node_visits": pipelined_result.stats["node_visits"],
    }


def tracing_overhead_when_disabled(items: int, bids: int,
                                   repeat: int = 9,
                                   seed: int = 7) -> dict:
    """Cost of the observability hooks when no tracer/metrics is
    attached, as a fraction of the uninstrumented engine.

    The floor runs the pipelined engine with ``path=None``, which
    skips every per-operator instrumentation check at every level (the
    same bypass nested subscript plans use); the measured leg runs the
    identical plan through the normal path, where each operator pull
    tests ``ctx.tracer``/``ctx.metrics`` and finds them ``None``.  The
    two legs are interleaved and the minimum of each is compared, so a
    load spike hits both or neither."""
    db, query = compiled(items, bids, seed=seed)
    plan = query.plan_named("nested").plan

    def drain(path):
        ctx = EvalContext(db.store)
        start = time.perf_counter()
        for _ in run_pipelined(plan, ctx, path=path):
            pass
        return time.perf_counter() - start

    drain(None), drain(())          # warm both legs
    floor_s = disabled_s = float("inf")
    for _ in range(max(1, repeat)):
        floor_s = min(floor_s, drain(None))
        disabled_s = min(disabled_s, drain(()))
    overhead = disabled_s / floor_s - 1.0 if floor_s else 0.0
    return {
        "floor_seconds": floor_s,
        "disabled_seconds": disabled_s,
        "disabled_overhead_pct": overhead * 100.0,
    }


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 60
    bids = int(argv[1]) if len(argv) > 1 else items * 50
    comparison = speedup_at(items, bids)
    overhead = tracing_overhead_when_disabled(items, bids)
    comparison.update(overhead)
    print(f"Q8 (short-circuit exists), items={items}, bids={bids}, "
          f"hot items={comparison['hot_items']}")
    print(f"  physical  : {comparison['physical_seconds']:.4f}s "
          f"({comparison['physical_node_visits']} node visits)")
    print(f"  pipelined : {comparison['pipelined_seconds']:.4f}s "
          f"({comparison['pipelined_node_visits']} node visits)")
    print(f"  speedup   : {comparison['speedup']:.1f}x")
    print(f"  tracing overhead when disabled: "
          f"{comparison['disabled_overhead_pct']:+.2f}% "
          f"(floor {comparison['floor_seconds']:.4f}s, "
          f"hooks-off {comparison['disabled_seconds']:.4f}s)")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q8_pipeline": [comparison]}})
        print(f"  JSON written to {argv[2]}")
    assert comparison["speedup"] >= 5.0, \
        f"expected >=5x speedup, got {comparison['speedup']:.1f}x"
    # <3% is the acceptance bar; the 1ms absolute allowance keeps a
    # sub-millisecond timer blip on a tiny run from failing the build.
    assert comparison["disabled_seconds"] <= \
        comparison["floor_seconds"] * 1.03 + 1e-3, \
        "observability hooks must cost <3% when disabled, measured " \
        f"{comparison['disabled_overhead_pct']:+.2f}%"
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
