"""E7 — index subsystem: selective value predicate on the auction items.

Not a paper table: the paper's engine (Natix) has real access paths and
its experiments presuppose them; this benchmark shows our index
subsystem supplying the same ingredient.  Q7 selects the few items with
a high reserve price:

    for $i1 in doc("items.xml")//itemtuple
    where $i1/reserveprice > 480 ...

The scan plan walks all of items.xml per execution; the ``nested+index``
plan answers the predicate with one sorted value-index probe (plus the
ancestor lift back to the qualifying ``itemtuple`` elements).  Run
directly for the speedup check at scale::

    PYTHONPATH=src python benchmarks/bench_q7_index.py [items] [out.json]

which asserts the ≥5× speedup this PR's acceptance criterion names
(comfortably >100× at the default 10000 items).
"""

from __future__ import annotations

import sys

import pytest

from repro.api import CompiledQuery, Database, compile_query
from repro.bench.harness import time_plan, write_json
from repro.datagen import ITEMS_DTD, generate_items

Q7_INDEX = '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice > 480
return
  <expensive>
    { $i1/itemno }
  </expensive>
'''

SIZES = (100, 1000)

_CACHE: dict[int, tuple[Database, CompiledQuery]] = {}


def compiled(items: int, seed: int = 7) -> tuple[Database, CompiledQuery]:
    if items not in _CACHE:
        db = Database(index_mode="eager")
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        _CACHE[items] = (db, compile_query(Q7_INDEX, db))
    return _CACHE[items]


@pytest.mark.parametrize("items", SIZES)
@pytest.mark.parametrize("plan", ("nested", "nested+index"))
def test_q7_by_size(benchmark, plan, items):
    db, query = compiled(items)
    physical = query.plan_named(plan).plan
    benchmark.group = f"q7 value predicate, items={items}"
    benchmark(lambda: db.execute(physical).output)


def speedup_at(items: int, repeat: int = 3, seed: int = 7) -> dict:
    """Measure scan vs probe at one scale; returns the comparison."""
    db, query = compiled(items, seed=seed)
    scan_plan = query.plan_named("nested").plan
    index_plan = query.plan_named("nested+index").plan
    scan_result = db.execute(scan_plan)
    index_result = db.execute(index_plan)
    assert index_result.output == scan_result.output, \
        "index plan must be byte-identical to the scan plan"
    scan_s = time_plan(db, scan_plan, repeat=repeat)
    index_s = time_plan(db, index_plan, repeat=repeat)
    return {
        "items": items,
        "matches": index_result.output.count("<expensive>"),
        "scan_seconds": scan_s,
        "index_seconds": index_s,
        "speedup": scan_s / index_s if index_s else float("inf"),
        "scan_node_visits": scan_result.stats["node_visits"],
        "index_node_visits": index_result.stats["node_visits"],
        "index_probes": index_result.stats["total_probes"],
        "document_scans_indexed": index_result.stats["total_scans"],
    }


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 10000
    comparison = speedup_at(items)
    print(f"Q7 (selective value predicate), items={items}, "
          f"matches={comparison['matches']}")
    print(f"  full scan : {comparison['scan_seconds']:.4f}s "
          f"({comparison['scan_node_visits']} node visits)")
    print(f"  IndexScan : {comparison['index_seconds']:.4f}s "
          f"({comparison['index_node_visits']} node visits, "
          f"{comparison['index_probes']} probe, "
          f"{comparison['document_scans_indexed']} document scans)")
    print(f"  speedup   : {comparison['speedup']:.1f}x")
    if len(argv) > 1:
        write_json(argv[1], {"schema": "repro-bench/1",
                             "queries": {"q7_index": [comparison]}})
        print(f"  JSON written to {argv[1]}")
    assert comparison["speedup"] >= 5.0, \
        f"expected >=5x speedup, got {comparison['speedup']:.1f}x"
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
