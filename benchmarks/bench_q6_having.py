"""E6 — §5.6 table (Aggregation in the where clause, R Q1.4.4.14).

Items with at least three bids (SQL HAVING analogue).  Paper: nested
0.06/0.53/48.1 s at 100/1000/10000 bids, grouping plan (Eqv. 3)
0.06/0.07/0.10 s.
"""

from __future__ import annotations

import pytest

from conftest import LINEAR_SIZES, SIZES, compiled_plan, run_plan


@pytest.mark.parametrize("bids", SIZES)
@pytest.mark.parametrize("plan", ("nested", "grouping"))
def test_q6_by_size(benchmark, plan, bids):
    db, compiled = compiled_plan("q6", plan, bids=bids)
    benchmark.group = f"q6 having, bids={bids}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("bids", LINEAR_SIZES)
def test_q6_grouping_scaling(benchmark, bids):
    db, compiled = compiled_plan("q6", "grouping", bids=bids)
    benchmark.group = f"q6 grouping scaling, bids={bids}"
    benchmark(run_plan, db, compiled)
