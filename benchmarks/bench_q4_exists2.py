"""E4 — §5.4 table (Existential quantification II, exists()).

Authors of books by Suciu, expressed through ``exists()`` over a
correlated subquery.  Paper: nested 0.04/1.31/138.8 s, semijoin
(Eqv. 6) 0.03/0.05/0.30 s, count-grouping (Eqv. 8) 0.02/0.02/0.02 s —
the grouping plan wins because it saves one scan of the document
(self-correlation), which our scan counters make explicit.
"""

from __future__ import annotations

import pytest

from conftest import LINEAR_SIZES, SIZES, compiled_plan, run_plan


@pytest.mark.parametrize("books", SIZES)
@pytest.mark.parametrize("plan", ("nested", "semijoin", "grouping"))
def test_q4_by_size(benchmark, plan, books):
    db, compiled = compiled_plan("q4", plan, books=books)
    benchmark.group = f"q4 exists(), books={books}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("books", LINEAR_SIZES)
@pytest.mark.parametrize("plan", ("semijoin", "grouping"))
def test_q4_unnested_scaling(benchmark, plan, books):
    db, compiled = compiled_plan("q4", plan, books=books)
    benchmark.group = f"q4 unnested scaling, books={books}"
    benchmark(run_plan, db, compiled)
