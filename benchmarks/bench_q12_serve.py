"""E12 — the serving path: prepared queries, caches, concurrent clients.

Not a paper table: the paper assumes a database *server* context where
the same query shapes arrive repeatedly, and this benchmark measures
what PR 8's request-lifecycle layer buys in exactly that setting.
Three request paths over the seeded auction documents:

- **cold** — every request pays the full pipeline: lex → parse →
  normalize → translate → unnest/optimize → execute (a fresh
  :class:`~repro.session.Session` per request, so nothing is reused);
- **prepared** — the plan cache is warm: requests reuse the compiled
  :class:`~repro.session.PreparedQuery` and only execute (the result
  cache is bypassed so the number isolates the plan cache's effect);
- **cached** — both caches warm: the request is answered from the
  result cache keyed by ``(plan digest, document versions)``.

The gated metrics are **dimensionless ratios** (both legs ride the
same machine):

- ``prepared_speedup`` = cold / prepared — recorded on the scan
  shapes, where per-request optimization dominates tiny-document
  execution; the acceptance criterion is ≥5× (the nested
  ``popular-items`` shape rides along unrated here: its execution
  dwarfs compilation, so the ratio would sit in the gate's noise);
- ``result_cache_speedup`` = prepared / cached — recorded on the
  nested shape, whose prepared leg is large enough that the O(lookup)
  hit wins by orders of magnitude (on the scan shapes both legs are
  tens of microseconds and the ratio is timing noise);
- ``plan_cache_hit_rate`` — from the concurrent serving run below;
  deterministic because each shape is warmed serially first, so
  exactly one miss per shape.

A serving section then runs the real :class:`~repro.server.app.
QueryServer` (port 0, in-process asyncio loop) under concurrent
client threads posting the mixed shapes, and records p50/p99 latency
and QPS — machine-dependent, so they ride along ungated.  Run
directly for the speedup check::

    PYTHONPATH=src python benchmarks/bench_q12_serve.py \\
        [items] [bids] [out.json]

which asserts the ≥5× prepared-vs-cold speedup on both scan shapes
and ≥5× result-cache speedup on every shape.
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time
import urllib.request

import pytest

from repro.api import Database
from repro.bench.harness import write_json
from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
    generate_items

Q12_QUERIES = {
    "bids-scan": '''
let $d1 := doc("bids.xml")
for $b1 in $d1//bidtuple
where $b1/bid >= 980
return <big>{ $b1/itemno }</big>
''',
    "items-scan": '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice >= 450
return <pricey>{ $i1/itemno }</pricey>
''',
    "popular-items": '''
let $d1 := doc("bids.xml")
for $i1 in distinct-values($d1//itemno)
where count($d1//bidtuple[itemno = $i1]) >= 3
return <popular-item>{ $i1 }</popular-item>
''',
}

#: shapes the ≥5× prepared-speedup acceptance criterion applies to
#: (optimization-dominated; see the module docstring)
GATED_SHAPES = ("bids-scan", "items-scan")

SIZES = ((50, 250), (100, 500))

_DB_CACHE: dict[tuple[int, int], Database] = {}


def database(items: int, bids: int, seed: int = 7) -> Database:
    key = (items, bids)
    if key not in _DB_CACHE:
        db = Database(index_mode="lazy")
        db.register_tree("bids.xml",
                         generate_bids(bids, items=items, seed=seed),
                         dtd_text=BIDS_DTD)
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        _DB_CACHE[key] = db
    return _DB_CACHE[key]


# ----------------------------------------------------------------------
# Request-path comparison (cold / prepared / cached)
# ----------------------------------------------------------------------
def lifecycle_at(query: str, items: int, bids: int,
                 repeat: int = 7) -> dict:
    """Measure the three request paths for one shape at one scale."""
    db = database(items, bids)
    text = Q12_QUERIES[query]

    cold_s = float("inf")
    for _ in range(max(1, repeat)):
        with db.session() as session:     # nothing cached
            start = time.perf_counter()
            cold_result = session.execute(text, use_result_cache=False)
            cold_s = min(cold_s, time.perf_counter() - start)

    with db.session() as session:
        prepared_result = session.execute(text, use_result_cache=False)
        assert prepared_result.output == cold_result.output, \
            "the prepared path must return byte-identical output"
        prepared_s = float("inf")
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            session.execute(text, use_result_cache=False)
            prepared_s = min(prepared_s, time.perf_counter() - start)

        session.execute(text)             # populate the result cache
        cached_s = float("inf")
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            cached_result = session.execute(text)
            cached_s = min(cached_s, time.perf_counter() - start)
        assert cached_result.cached, "expected a result-cache hit"
        assert cached_result.output == cold_result.output, \
            "a result-cache hit must return byte-identical output"

    record = {
        "query": query,
        "items": items,
        "bids": bids,
        "rows": len(cold_result.rows),
        "cold_seconds": cold_s,
        "prepared_seconds": prepared_s,
        "cached_seconds": cached_s,
    }
    # Each gated ratio appears only on the records where it is robust:
    # prepared-vs-cold on the optimization-dominated scan shapes (the
    # ≥5× criterion), result-cache-vs-prepared on the
    # execution-dominated nested shape (where prepared work is large
    # enough that a ~20µs lookup wins by orders of magnitude — on the
    # scan shapes both legs are tens of microseconds and the ratio is
    # timing noise).
    if query in GATED_SHAPES:
        record["prepared_speedup"] = cold_s / prepared_s \
            if prepared_s else float("inf")
    else:
        record["result_cache_speedup"] = prepared_s / cached_s \
            if cached_s else float("inf")
    return record


# ----------------------------------------------------------------------
# Concurrent serving (real server, client threads)
# ----------------------------------------------------------------------
def serve_at(items: int, bids: int, clients: int = 4,
             requests_per_client: int = 25) -> dict:
    """Run the QueryServer in-process and hammer it with concurrent
    clients posting the mixed shapes; returns the serving record."""
    import asyncio

    from repro.server.app import QueryServer, ServerConfig

    db = database(items, bids)
    session = db.session(default_timeout=30.0)
    server = QueryServer(session, ServerConfig(
        port=0, max_concurrency=max(2, clients // 2),
        queue_depth=clients * requests_per_client))

    loop = asyncio.new_event_loop()
    ready = threading.Event()

    async def run() -> None:
        await server.start()
        ready.set()
        await server.serve_forever()

    def runner() -> None:
        try:
            loop.run_until_complete(run())
        except asyncio.CancelledError:
            pass

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("query server did not start")
    host, port = server.address
    url = f"http://{host}:{port}/query"

    def post(payload: dict) -> dict:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request, timeout=30) as reply:
            return json.loads(reply.read().decode("utf-8"))

    shapes = list(Q12_QUERIES.values())
    for text in shapes:                   # exactly one miss per shape
        post({"query": text})

    latencies: list[float] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        mine: list[float] = []
        for i in range(requests_per_client):
            text = shapes[(index + i) % len(shapes)]
            start = time.perf_counter()
            reply = post({"query": text})
            mine.append(time.perf_counter() - start)
            assert reply["rows"] >= 0
        with lock:
            latencies.extend(mine)

    workers = [threading.Thread(target=client, args=(c,))
               for c in range(clients)]
    wall_start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - wall_start

    stats = session.cache_stats()
    plan = stats["plan_cache"]
    result = stats["result_cache"]
    loop.call_soon_threadsafe(
        lambda: [task.cancel() for task in asyncio.all_tasks(loop)])
    thread.join(timeout=5)
    session.close()

    latencies.sort()
    total = len(latencies)
    return {
        "query": "serve-mixed",
        "items": items,
        "bids": bids,
        "clients": clients,
        "requests": total,
        "qps": total / wall if wall else float("inf"),
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": latencies[min(total - 1, int(total * 0.99))] * 1e3,
        "plan_cache_hit_rate":
            plan["hits"] / (plan["hits"] + plan["misses"]),
        "result_cache_hit_rate":
            result["hits"] / (result["hits"] + result["misses"]),
    }


# ----------------------------------------------------------------------
# pytest-benchmark hooks (comparison runs: pytest benchmarks/)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("query", tuple(Q12_QUERIES))
def test_q12_cold(benchmark, query, items, bids):
    db = database(items, bids)
    text = Q12_QUERIES[query]
    benchmark.group = f"q12 {query}, items={items} bids={bids}"

    def cold():
        with db.session() as session:
            return session.execute(text, use_result_cache=False).output

    benchmark(cold)


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("query", tuple(Q12_QUERIES))
def test_q12_prepared(benchmark, query, items, bids):
    db = database(items, bids)
    text = Q12_QUERIES[query]
    benchmark.group = f"q12 {query}, items={items} bids={bids}"
    with db.session() as session:
        session.execute(text, use_result_cache=False)
        benchmark(lambda: session.execute(
            text, use_result_cache=False).output)


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("query", tuple(Q12_QUERIES))
def test_q12_cached(benchmark, query, items, bids):
    db = database(items, bids)
    text = Q12_QUERIES[query]
    benchmark.group = f"q12 {query}, items={items} bids={bids}"
    with db.session() as session:
        session.execute(text)
        benchmark(lambda: session.execute(text).output)


# ----------------------------------------------------------------------
def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 100
    bids = int(argv[1]) if len(argv) > 1 else items * 5
    records = [lifecycle_at(query, items, bids)
               for query in Q12_QUERIES]
    serving = serve_at(items, bids)
    print(f"Q12 (serving path), items={items}, bids={bids}")
    for record in records:
        prepared_x = record["cold_seconds"] / record["prepared_seconds"]
        cached_x = record["prepared_seconds"] / record["cached_seconds"]
        print(f"  {record['query']:14s}: cold "
              f"{record['cold_seconds'] * 1e3:7.2f}ms, prepared "
              f"{record['prepared_seconds'] * 1e3:7.3f}ms "
              f"({prepared_x:.1f}x), cached "
              f"{record['cached_seconds'] * 1e6:6.0f}us "
              f"({cached_x:.0f}x) [{record['rows']} rows]")
    print(f"  {serving['query']:14s}: {serving['requests']} requests, "
          f"{serving['clients']} clients -> {serving['qps']:.0f} QPS, "
          f"p50 {serving['p50_ms']:.2f}ms, p99 {serving['p99_ms']:.2f}ms, "
          f"plan-cache hit rate {serving['plan_cache_hit_rate']:.3f}")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q12_serve":
                                         records + [serving]}})
        print(f"  JSON written to {argv[2]}")
    for record in records:
        if record["query"] in GATED_SHAPES:
            assert record["prepared_speedup"] >= 5.0, \
                (f"{record['query']}: expected >=5x prepared vs cold, "
                 f"got {record['prepared_speedup']:.1f}x")
        else:
            assert record["result_cache_speedup"] >= 5.0, \
                (f"{record['query']}: expected O(lookup) result-cache "
                 f"hits (>=5x), got "
                 f"{record['result_cache_speedup']:.1f}x")
        assert record["cached_seconds"] <= record["prepared_seconds"], \
            f"{record['query']}: a result-cache hit must not be slower"
    assert serving["plan_cache_hit_rate"] >= 0.9, \
        "warmed shapes must hit the plan cache"
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
