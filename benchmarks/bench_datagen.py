"""E0 — Fig. 6 (document generation).

Fig. 6 is a table of input-document sizes; the sizes themselves are
checked in ``tests/test_datagen.py``.  This benchmark measures our
ToXgene stand-in's generation and parsing throughput so regressions in
the substrate show up.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    BIB_DTD,
    generate_bib,
    generate_bids,
    generate_prices,
)
from repro.xmldb.parser import parse_document
from repro.xmldb.serialize import serialize


@pytest.mark.parametrize("books", (100, 1000))
def test_generate_bib(benchmark, books):
    benchmark.group = f"datagen, n={books}"
    benchmark(generate_bib, books, 2, seed=7)


@pytest.mark.parametrize("books", (100, 1000))
def test_generate_prices(benchmark, books):
    benchmark.group = f"datagen, n={books}"
    benchmark(generate_prices, books, seed=7)


@pytest.mark.parametrize("bids", (100, 1000))
def test_generate_bids(benchmark, bids):
    benchmark.group = f"datagen, n={bids}"
    benchmark(generate_bids, bids, seed=7)


@pytest.mark.parametrize("books", (100, 1000))
def test_parse_roundtrip(benchmark, books):
    """Serialize + reparse a generated bib (XML substrate throughput)."""
    text = serialize(generate_bib(books, 2, seed=7))
    benchmark.group = f"xml parse, n={books}"
    benchmark(parse_document, text)
