"""E14 — live updates: incremental delta maintenance vs full
re-registration.

Not a paper table: the paper's documents are static; this benchmark
measures what the versioned delta arenas (``xmldb/delta.py``, see
docs/updates.md) buy a mixed read/update workload over the frozen
"everything is immutable" alternative, which would re-register the
whole document for every change:

- **update latency** — one ``Replace`` of an ``itemtuple`` subtree
  through ``DocumentStore.update`` (columnar splice + incremental
  path/value index maintenance, ``index_mode="eager"``), against
  serializing the current version and re-registering it from text
  (re-parse, re-encode, eager index rebuild).  The ratio is the gated
  ``update_speedup`` — both legs ride the same machine, so it is
  machine-independent; the committed floor is 5x and the script
  asserts it at CI scale.
- **read interference** — the same scan-filter query timed on a quiet
  store and interleaved with updates.  MVCC readers never block on
  writers (each query pins a snapshot), so the interleaved latency
  should track the quiet one; the ratio rides along ungated (it sits
  near 1x, inside the timing-noise band the gate refuses to judge).
- **maintenance counters** — ``incremental_applies`` /
  ``full_builds`` from the index manager pin that the update path
  really is incremental: one apply per update, and full builds only
  for registrations.  Deterministic, and gated exactly.

Every measurement round first asserts the updated store answers the
read query byte-identically to a fresh database registered from the
updated version's serialization — the incremental path must never
drift from re-parse-from-scratch semantics.  Run directly at scale::

    PYTHONPATH=src python benchmarks/bench_q14_updates.py \\
        [items] [out.json]
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.api import Database, compile_query
from repro.bench.harness import write_json
from repro.datagen import ITEMS_DTD, generate_items
from repro.xmldb.delta import Replace
from repro.xmldb.node import element
from repro.xmldb.serialize import serialize

UPDATES = 20
READS = 5

READ_QUERY = '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice >= 490
return <pricey>{ $i1/itemno }</pricey>
'''


def build_db(items: int, seed: int = 7) -> Database:
    db = Database(index_mode="eager")
    db.register_tree("items.xml", generate_items(items, seed=seed),
                     dtd_text=ITEMS_DTD)
    return db


def replacement(k: int):
    """A fresh ``itemtuple`` subtree whose reserveprice (499) lands in
    the read query's result — every update visibly changes the rows."""
    return element("itemtuple",
                   element("itemno", f"updated-{k:04d}"),
                   element("description", f"refreshed item {k}"),
                   element("offered_by", "u9999"),
                   element("reserveprice", "499"))


def nth_item_pre(db: Database, k: int) -> int:
    rows = db.store.get("items.xml").arena.tag_rows("itemtuple")
    return rows[k % len(rows)]


def assert_differential(db: Database, plan) -> None:
    """The updated store must answer exactly like a database freshly
    registered from the updated version's serialization."""
    text = serialize(db.store.get("items.xml").root)
    scratch = Database(index_mode="eager")
    scratch.register_text("items.xml", text, dtd_text=ITEMS_DTD)
    scratch_plan = compile_query(READ_QUERY, scratch).best().plan
    live = db.execute(plan)
    fresh = scratch.execute(scratch_plan)
    assert live.output == fresh.output, \
        "updated store diverged from re-parse-from-scratch"
    assert serialize(db.store.get("items.xml").root) == \
        serialize(scratch.store.get("items.xml").root)


@pytest.mark.parametrize("items", (500, 2000))
def test_q14_update_latency(benchmark, items):
    db = build_db(items)
    counter = iter(range(10 ** 9))
    benchmark.group = f"q14 update, items={items}"
    benchmark(lambda: db.update(
        "items.xml",
        Replace(nth_item_pre(db, 0), replacement(next(counter)))))


@pytest.mark.parametrize("items", (500, 2000))
def test_q14_reregister_latency(benchmark, items):
    db = build_db(items)
    text = serialize(db.store.get("items.xml").root)
    benchmark.group = f"q14 re-register, items={items}"

    def rereg():
        db.unregister("items.xml")
        db.register_text("items.xml", text, dtd_text=ITEMS_DTD)

    benchmark(rereg)


def measure(items: int, seed: int = 7) -> dict:
    db = build_db(items, seed=seed)
    plan = compile_query(READ_QUERY, db).best().plan
    db.execute(plan)  # warm any lazily built structures

    # Quiet-store read latency.
    read_quiet = min(db.execute(plan).elapsed for _ in range(READS))

    # Update latency: Replace one itemtuple per round, timed around
    # the whole publish (splice + incremental index maintenance +
    # version bookkeeping).
    update_s = float("inf")
    for k in range(UPDATES):
        ops = Replace(nth_item_pre(db, k), replacement(k))
        start = time.perf_counter()
        db.update("items.xml", ops)
        update_s = min(update_s, time.perf_counter() - start)
    applies = db.store.indexes.incremental_applies
    assert applies == UPDATES, \
        f"expected {UPDATES} incremental applies, got {applies}"
    assert_differential(db, plan)

    # Interleaved read latency: the reader pins a snapshot, so updates
    # landing around it must not change what it costs.
    read_mixed = float("inf")
    for k in range(READS):
        db.update("items.xml",
                  Replace(nth_item_pre(db, UPDATES + k),
                          replacement(UPDATES + k)))
        read_mixed = min(read_mixed, db.execute(plan).elapsed)

    # Full re-registration latency for the same logical change: the
    # only update path a strictly-frozen store offers.
    text = serialize(db.store.get("items.xml").root)
    rereg_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        db.unregister("items.xml")
        db.register_text("items.xml", text, dtd_text=ITEMS_DTD)
        rereg_s = min(rereg_s, time.perf_counter() - start)

    rows = len(db.execute(plan).rows)
    record = {
        "query": "replace-item",
        "items": items,
        "updates": UPDATES,
        "rows": rows,
        "update_seconds": update_s,
        "rereg_seconds": rereg_s,
        "update_speedup": rereg_s / update_s if update_s
        else float("inf"),
        "incremental_applies": applies,
        "full_builds": db.store.indexes.full_builds,
        "read_quiet_seconds": read_quiet,
        "read_mixed_seconds": read_mixed,
        "read_interference": read_mixed / read_quiet if read_quiet
        else float("inf"),
    }
    return record


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 4000
    record = measure(items)
    print(f"Q14 (live updates), items={items}, "
          f"updates={record['updates']}")
    print(f"  update    : {record['update_seconds'] * 1e3:8.3f} ms "
          f"(incremental index maintenance, "
          f"{record['incremental_applies']} applies)")
    print(f"  re-register: {record['rereg_seconds'] * 1e3:8.3f} ms "
          f"(re-parse + eager rebuild)")
    print(f"  -> update_speedup {record['update_speedup']:.1f}x")
    print(f"  read quiet {record['read_quiet_seconds'] * 1e3:.3f} ms, "
          f"interleaved {record['read_mixed_seconds'] * 1e3:.3f} ms "
          f"-> interference {record['read_interference']:.2f}x "
          f"[{record['rows']} rows]")
    if len(argv) > 1:
        write_json(argv[1], {"schema": "repro-bench/1",
                             "queries": {"q14_updates": [record]}})
        print(f"  JSON written to {argv[1]}")
    if items >= 2000:
        assert record["update_speedup"] >= 5.0, \
            (f"expected >=5x update speedup over re-registration, "
             f"got {record['update_speedup']:.1f}x")
    else:
        print("  note: small document — speedup recorded but not "
              "asserted (needs items >= 2000)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
