"""E8 — ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper table; these isolate *why* the unnested plans win:

1. physical (hash-based, order-preserving) vs reference (definitional,
   nested-loop) execution of the same unnested plan — the engine
   substrate matters even after unnesting;
2. grouping plan vs group-Ξ plan for q1 — the paper's §5.1 point that
   the group-detecting Ξ saves the Γ's sequence-valued intermediate;
3. semijoin (two scans) vs count-grouping (one scan) for the
   self-correlated q4 — the paper's §5.4 point about Eqv. 8.
"""

from __future__ import annotations

import pytest

from conftest import compiled_plan
from repro.engine.executor import execute

BOOKS = 100


@pytest.mark.parametrize("mode", ("physical", "reference"))
@pytest.mark.parametrize("plan", ("grouping", "outerjoin"))
def test_engine_mode(benchmark, plan, mode):
    db, compiled = compiled_plan("q1", plan, books=BOOKS,
                                 authors_per_book=2)
    benchmark.group = f"ablation: engine mode, q1 {plan}"
    benchmark(execute, compiled, db.store, mode)


@pytest.mark.parametrize("plan", ("grouping", "group-xi"))
def test_group_xi(benchmark, plan):
    db, compiled = compiled_plan("q1", plan, books=300,
                                 authors_per_book=5)
    benchmark.group = "ablation: grouping vs group-Ξ (q1, 300×5)"
    benchmark(execute, compiled, db.store, "physical")


@pytest.mark.parametrize("plan", ("semijoin", "grouping"))
def test_scan_saving(benchmark, plan):
    db, compiled = compiled_plan("q4", plan, books=300)
    benchmark.group = "ablation: Eqv. 6 vs Eqv. 8 (q4, 300 books)"
    benchmark(execute, compiled, db.store, "physical")


@pytest.mark.parametrize("ranking", ("heuristic", "cost"))
def test_ranking_overhead(benchmark, ranking):
    """Optimization-time cost of the two ranking strategies: the cost
    model walks every alternative plan and the documents' tag counts,
    so it is slower to *plan* — this quantifies by how much."""
    from repro.api import compile_query
    from repro.bench.queries import PAPER_QUERIES

    spec = PAPER_QUERIES["q1"]
    db = spec.build_db(books=100, authors_per_book=2)

    def plan_once():
        return compile_query(spec.text, db, ranking=ranking).plans()

    benchmark.group = "ablation: plan-ranking strategy (q1, 100 books)"
    benchmark(plan_once)
