"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation section (see DESIGN.md §4 for the experiment index).  Plans
are compiled once per parameter combination and cached; the benchmark
body measures execution only, mirroring the paper's setup (the paper
reports evaluation time, not compile time).

Sizes are scaled down from the paper's 100/1000/10000 because the nested
plans are quadratic and our engine is a Python interpreter; the *shape*
(nested quadratic, unnested linear, grouping ≼ outer join) is preserved
and asserted by ``tests/test_paper_queries.py``.
"""

from __future__ import annotations

import pytest

from repro.api import CompiledQuery, compile_query
from repro.bench.queries import PAPER_QUERIES

# Size axis shared by all query benchmarks.  SMALL keeps the full
# ``pytest benchmarks/ --benchmark-only`` run in the minutes range.
SIZES = (30, 100)
# Extra sizes exercised only by unnested (linear) plans.
LINEAR_SIZES = (30, 100, 300)

_CACHE: dict[tuple, tuple[CompiledQuery, object]] = {}


def compiled_plan(key: str, label: str, **params):
    """(database, plan) for one paper query variant, memoized."""
    cache_key = (key, label, tuple(sorted(params.items())))
    if cache_key not in _CACHE:
        spec = PAPER_QUERIES[key]
        db = spec.build_db(**params)
        compiled = compile_query(spec.text, db)
        plan = compiled.plan_named(label).plan
        _CACHE[cache_key] = (db, plan)
    return _CACHE[cache_key]


def run_plan(db, plan):
    result = db.execute(plan)
    return result.output


@pytest.fixture
def plan_runner():
    """Returns a callable benchmarks use: run(key, label, **params)."""
    def run(key: str, label: str, **params):
        db, plan = compiled_plan(key, label, **params)
        return run_plan(db, plan)
    return run
