"""E11 — vectorized execution: batch-at-a-time scans over arena columns.

Not a paper table: the paper's engine is tuple-at-a-time; this
benchmark measures what PR 7's third execution strategy buys on the
workload class it targets — selective scan-filter queries where the
per-tuple interpretation overhead (generator hops, ``Tup`` copies,
per-row scalar dispatch) dominates.  The vectorized engine instead
moves whole batches through the plan: the Υ scan resolves to the
arena's per-tag pre lists, the hoisted ``where`` clause fuses into one
selection-vector pass reading string values straight off the arena
columns, and only surviving rows are ever materialized as tuples.

Two queries over the seeded auction documents:

- ``bids-scan`` — bids with ``bid >= 980`` (every ``bidtuple`` has a
  numeric ``bid``; the filter is highly selective);
- ``items-scan`` — items with ``reserveprice >= 450`` (only ~40% of
  items carry a ``reserveprice`` at all, so the pass is NULL-heavy).

The gated ``speedup`` metric is **pure-python** vectorized vs
pipelined (``use_numpy(False)``), so the number is comparable on
runners without numpy; when numpy is importable the numpy-kernel
speedup rides along as the ungated ``speedup_numpy``.  Run directly
for the speedup check at scale::

    PYTHONPATH=src python benchmarks/bench_q11_vectorized.py \\
        [items] [bids] [out.json]

which asserts the ≥5× speedup this PR's acceptance criterion names
on both queries (comfortably above it at the default
4000 items × 20000 bids).
"""

from __future__ import annotations

import sys

import pytest

from repro.api import CompiledQuery, Database, compile_query
from repro.bench.harness import write_json
from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
    generate_items
from repro.engine.batch import numpy_available, use_numpy

Q11_QUERIES = {
    "bids-scan": '''
let $d1 := doc("bids.xml")
for $b1 in $d1//bidtuple
where $b1/bid >= 980
return <big>{ $b1/itemno }</big>
''',
    "items-scan": '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice >= 450
return <pricey>{ $i1/itemno }</pricey>
''',
}

SIZES = ((400, 2000), (1000, 5000))

_CACHE: dict[tuple[int, int],
             tuple[Database, dict[str, CompiledQuery]]] = {}


def compiled(items: int, bids: int, seed: int = 7
             ) -> tuple[Database, dict[str, CompiledQuery]]:
    key = (items, bids)
    if key not in _CACHE:
        db = Database()
        db.register_tree("bids.xml",
                         generate_bids(bids, items=items, seed=seed),
                         dtd_text=BIDS_DTD)
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        _CACHE[key] = (db, {name: compile_query(text, db)
                            for name, text in Q11_QUERIES.items()})
    return _CACHE[key]


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("mode", ("pipelined", "vectorized"))
@pytest.mark.parametrize("query", tuple(Q11_QUERIES))
def test_q11_by_size(benchmark, query, mode, items, bids):
    db, queries = compiled(items, bids)
    plan = queries[query].best().plan
    benchmark.group = f"q11 {query}, items={items} bids={bids}"
    benchmark(lambda: db.execute(plan, mode=mode).output)


def speedup_at(query: str, items: int, bids: int, repeat: int = 5,
               seed: int = 7) -> dict:
    """Measure pipelined vs vectorized for one query at one scale;
    returns the comparison record."""
    db, queries = compiled(items, bids, seed=seed)
    plan = queries[query].best().plan
    pipelined_result = db.execute(plan, mode="pipelined")
    with use_numpy(False):
        vectorized_result = db.execute(plan, mode="vectorized")
    assert vectorized_result.output == pipelined_result.output, \
        "vectorized mode must be byte-identical to pipelined mode"
    assert vectorized_result.rows == pipelined_result.rows, \
        "vectorized mode must produce identical rows"
    pipelined_s = vectorized_s = float("inf")
    for _ in range(max(1, repeat)):
        pipelined_s = min(pipelined_s,
                          db.execute(plan, mode="pipelined").elapsed)
        with use_numpy(False):
            vectorized_s = min(
                vectorized_s,
                db.execute(plan, mode="vectorized").elapsed)
    record = {
        "query": query,
        "items": items,
        "bids": bids,
        "rows": len(pipelined_result.rows),
        "pipelined_seconds": pipelined_s,
        "vectorized_seconds": vectorized_s,
        "speedup": pipelined_s / vectorized_s if vectorized_s
        else float("inf"),
    }
    if numpy_available():
        numpy_s = float("inf")
        for _ in range(max(1, repeat)):
            numpy_s = min(numpy_s,
                          db.execute(plan, mode="vectorized").elapsed)
        record["numpy_seconds"] = numpy_s
        record["speedup_numpy"] = pipelined_s / numpy_s if numpy_s \
            else float("inf")
    return record


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 4000
    bids = int(argv[1]) if len(argv) > 1 else items * 5
    records = [speedup_at(query, items, bids)
               for query in Q11_QUERIES]
    print(f"Q11 (vectorized scans), items={items}, bids={bids}")
    for record in records:
        extra = ""
        if "speedup_numpy" in record:
            extra = (f", {record['speedup_numpy']:.1f}x with numpy "
                     f"({record['numpy_seconds']:.4f}s)")
        print(f"  {record['query']:10s}: pipelined "
              f"{record['pipelined_seconds']:.4f}s, vectorized "
              f"{record['vectorized_seconds']:.4f}s pure-python "
              f"-> {record['speedup']:.1f}x{extra} "
              f"[{record['rows']} rows]")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q11_vectorized": records}})
        print(f"  JSON written to {argv[2]}")
    for record in records:
        assert record["speedup"] >= 5.0, \
            (f"{record['query']}: expected >=5x pure-python speedup, "
             f"got {record['speedup']:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
