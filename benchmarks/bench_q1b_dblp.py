"""E1b — §5.1's DBLP paragraph.

On a DBLP-shaped document (books *and* articles, so some authors have
no book) the side condition of Eqv. 5 fails and the optimizer must stay
with the outer-join plan of Eqv. 4.  Paper: nested 182h42m vs outer
join 13.95 s on the 140 MB DBLP; the point is the plan *choice*, which
``tests/test_rewriter.py`` asserts, and the nested/unnested gap, which
this benchmark shows at reduced scale.
"""

from __future__ import annotations

import pytest

from conftest import compiled_plan, run_plan

SCALES = ((50, 150), (100, 300))


@pytest.mark.parametrize("books,articles", SCALES)
@pytest.mark.parametrize("plan", ("nested", "outerjoin"))
def test_q1_dblp(benchmark, plan, books, articles):
    db, compiled = compiled_plan("q1_dblp", plan, books=books,
                                 articles=articles)
    benchmark.group = f"q1 on DBLP, books={books}, articles={articles}"
    benchmark(run_plan, db, compiled)
