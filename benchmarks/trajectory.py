"""Perf-trajectory gate CLI — compare fresh bench artifacts against the
tracked ``BENCH_<query>.json`` baselines at the repository root.

CI runs the standalone benchmarks (each writes a ``repro-bench/1`` JSON
artifact) and then gates on them::

    PYTHONPATH=src python benchmarks/trajectory.py check \\
        bench-q7.json bench-q8.json bench-q9.json bench-q10.json

``check`` exits 1 if any gated metric regressed by more than 20%
against its baseline, if an artifact was measured at sizes the baseline
does not cover, or if a gated query has no baseline file.  Only
machine-independent metrics are gated (speedup ratios and deterministic
node-visit/probe counters) — raw seconds never cross machines; see
:mod:`repro.bench.trajectory` for the rules.

To refresh the baselines (after an intentional perf change or a size
bump), either consolidate existing artifacts::

    PYTHONPATH=src python benchmarks/trajectory.py update bench-*.json

or re-run the benchmarks at the CI sizes and rewrite the baselines in
one step (this is what ``make bench-update`` does)::

    PYTHONPATH=src python benchmarks/trajectory.py run-update
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys
import tempfile

from repro.bench.trajectory import THRESHOLD, check, write_baselines

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCHMARKS_DIR.parent

#: the CI invocation of each standalone benchmark: (script, sizes)
CI_RUNS = (
    ("bench_q7_index.py", ("2000",)),
    ("bench_q8_pipeline.py", ("20", "1000")),
    ("bench_q9_storage.py", ("2000", "10000")),
    ("bench_q10_order.py", ("600", "3000")),
    ("bench_q11_vectorized.py", ("4000", "20000")),
    ("bench_q12_serve.py", ("100", "500")),
    ("bench_q13_parallel.py", ("1200", "19200")),
    ("bench_q14_updates.py", ("4000",)),
)


def _run_bench(script: str, argv: list[str]) -> int:
    """Import a sibling benchmark by path and call its ``main``."""
    path = BENCHMARKS_DIR / script
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trajectory.py",
        description="Gate benchmark artifacts against the tracked "
                    "BENCH_<query>.json perf-trajectory baselines "
                    f"(fail on >{THRESHOLD:.0%} regression).")
    parser.add_argument("command", choices=("check", "update",
                                            "run-update"))
    parser.add_argument("artifacts", nargs="*",
                        help="bench JSON artifacts (check/update)")
    parser.add_argument("--baseline-dir", default=str(REPO_ROOT),
                        help="directory holding BENCH_<query>.json "
                             "(default: the repository root)")
    args = parser.parse_args(argv)

    if args.command in ("check", "update") and not args.artifacts:
        parser.error(f"{args.command} needs at least one artifact")

    if args.command == "check":
        issues = check(args.artifacts, args.baseline_dir)
        if issues:
            print("perf-trajectory gate FAILED:", file=sys.stderr)
            for issue in issues:
                print(f"  - {issue}", file=sys.stderr)
            return 1
        print(f"perf-trajectory gate passed "
              f"({len(args.artifacts)} artifact(s), "
              f"threshold {THRESHOLD:.0%})")
        return 0

    if args.command == "update":
        written = write_baselines(args.artifacts, args.baseline_dir)
        for path in written:
            print(f"wrote {path}")
        return 0

    # run-update: re-run every benchmark at the CI sizes, then rewrite
    # the baselines from the fresh artifacts.
    with tempfile.TemporaryDirectory() as tmp:
        artifacts: list[str] = []
        for script, sizes in CI_RUNS:
            out = str(pathlib.Path(tmp) / f"{pathlib.Path(script).stem}"
                                          ".json")
            print(f"== {script} {' '.join(sizes)} ==")
            status = _run_bench(script, [*sizes, out])
            if status:
                print(f"error: {script} exited {status}",
                      file=sys.stderr)
                return status
            artifacts.append(out)
        written = write_baselines(artifacts, args.baseline_dir)
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
