"""E5 — §5.5 table (Universal quantification).

Authors all of whose books appeared after 1993 (``every … satisfies``).
Paper: nested 0.12/4.86/507.85 s, anti-semijoin (Eqv. 7)
0.07/0.08/0.24 s, count-grouping (Eqv. 9) 0.07/0.08/0.23 s.
"""

from __future__ import annotations

import pytest

from conftest import LINEAR_SIZES, SIZES, compiled_plan, run_plan


@pytest.mark.parametrize("books", SIZES)
@pytest.mark.parametrize("plan", ("nested", "antijoin", "grouping"))
def test_q5_by_size(benchmark, plan, books):
    db, compiled = compiled_plan("q5", plan, books=books)
    benchmark.group = f"q5 forall, books={books}"
    benchmark(run_plan, db, compiled)


@pytest.mark.parametrize("books", LINEAR_SIZES)
@pytest.mark.parametrize("plan", ("antijoin", "grouping"))
def test_q5_unnested_scaling(benchmark, plan, books):
    db, compiled = compiled_plan("q5", plan, books=books)
    benchmark.group = f"q5 unnested scaling, books={books}"
    benchmark(run_plan, db, compiled)
