"""E10 — order-property elision: proven order vs. forced sorts/dedups.

Not a paper table: this measures the order-property subsystem itself.
Document order is a semantic obligation of every query here, and after
the interval-encoded arena most of it comes for free — ``//tag`` slices
are born ordered and duplicate-free, and a column like the auction's
``itemno`` is non-decreasing in document order (a fact the optimizer
*checks* once against the frozen document and caches).  The baseline —
toggled via ``repro.optimizer.properties.elision(False)`` — forces the
legacy behaviour on the *same query, plan shape and engine*: every
``order by`` Sort executes and every XPath evaluation pays the
materialize-dedup-sort pass.

Q10 is an order-by-heavy auction report: items in ``itemno`` order,
each carrying two market-wide denominators (total bids / bid days, used
to put the item's own numbers in proportion).  The *nested* plan — the
translation every query starts from — re-evaluates the ``//bid`` and
``//biddate`` paths once per item, which is exactly the nested-loop
redundancy of the paper's experiments; with the order subsystem on,
each of those evaluations is a bare arena slice (the dedup pass is
provably redundant) and the ``order by`` Sort is elided outright
(``itemno`` is born sorted)::

    PYTHONPATH=src python benchmarks/bench_q10_order.py \\
        [items] [bids] [out.json]

which asserts the ≥5× speedup this PR's acceptance criterion names.  A
second leg (``q10_orderonly``, no per-item denominators) isolates the
Sort elision itself and is reported alongside.  Outputs must be
byte-identical between the two configurations — a stable sort over an
already-sorted stream is the identity, and the skipped dedup passes
were provably no-ops.
"""

from __future__ import annotations

import sys

import pytest

from repro.api import Database, compile_query
from repro.bench.harness import write_json
from repro.datagen import BIDS_DTD, ITEMS_DTD, generate_bids, \
    generate_items
from repro.optimizer import properties
from repro.optimizer.elide_order import elided_sorts

Q10_REPORT = '''
let $d1 := doc("items.xml")
let $b1 := doc("bids.xml")
for $i1 in $d1//itemtuple
let $n1 := zero-or-one($i1/itemno)
order by $n1
return <item><no>{ $n1 }</no>
  <market-bids>{ count($b1//bid) }</market-bids>
  <market-days>{ count($b1//biddate) }</market-days></item>
'''

Q10_ORDERONLY = '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
let $n1 := zero-or-one($i1/itemno)
order by $n1
return <item><no>{ $n1 }</no><d>{ $i1/description }</d></item>
'''

SIZES = ((200, 1000), (600, 3000))

_CACHE: dict[tuple[int, int, int], Database] = {}


def database(items: int, bids: int, seed: int = 7) -> Database:
    key = (items, bids, seed)
    if key not in _CACHE:
        db = Database()
        db.register_tree("items.xml", generate_items(items, seed=seed),
                         dtd_text=ITEMS_DTD)
        db.register_tree("bids.xml",
                         generate_bids(bids, items=items, seed=seed),
                         dtd_text=BIDS_DTD)
        _CACHE[key] = db
    return _CACHE[key]


def compiled(db: Database, text: str, elision: bool):
    """The nested plan, compiled with the order subsystem on or off."""
    with properties.elision(elision):
        return compile_query(text, db).plan_named("nested").plan


@pytest.mark.parametrize("items,bids", SIZES)
@pytest.mark.parametrize("elision", (False, True),
                         ids=("forced-sort", "elided"))
def test_q10_by_size(benchmark, elision, items, bids):
    db = database(items, bids)
    plan = compiled(db, Q10_REPORT, elision)
    benchmark.group = f"q10 order, items={items} bids={bids}"

    def run():
        with properties.elision(elision):
            return db.execute(plan).output

    benchmark(run)


def _best_of(db: Database, plan, elision: bool,
             repeat: int) -> tuple[float, object]:
    elapsed = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        with properties.elision(elision):
            result = db.execute(plan)
        elapsed = min(elapsed, result.elapsed)
    return elapsed, result


def speedup_at(items: int, bids: int, query_text: str, label: str,
               repeat: int = 3, seed: int = 7) -> dict:
    """Time one query with the order subsystem on and off; identical
    documents, same (nested) plan shape, byte-identical output
    required.  The elided plan must actually contain an elided Sort —
    the itemno guarantee is data-derived, so this also pins that the
    check fired."""
    db = database(items, bids, seed=seed)
    forced_plan = compiled(db, query_text, elision=False)
    elided_plan = compiled(db, query_text, elision=True)
    assert not elided_sorts(forced_plan), "baseline must force its sorts"
    assert elided_sorts(elided_plan), \
        "the order-by Sort on itemno should have been elided"
    forced_s, forced_result = _best_of(db, forced_plan, False, repeat)
    elided_s, elided_result = _best_of(db, elided_plan, True, repeat)
    assert elided_result.output == forced_result.output, \
        "elided plans must be byte-identical to forced-sort plans"
    return {
        "query": label,
        "items": items,
        "bids": bids,
        "forced_seconds": forced_s,
        "elided_seconds": elided_s,
        "speedup": forced_s / elided_s if elided_s else float("inf"),
        "elided_sorts": [op.label() for op in elided_sorts(elided_plan)],
    }


def main(argv: list[str]) -> int:
    items = int(argv[0]) if argv else 1000
    bids = int(argv[1]) if len(argv) > 1 else items * 5
    rows = [speedup_at(items, bids, Q10_REPORT, "q10_report"),
            speedup_at(items, bids, Q10_ORDERONLY, "q10_orderonly")]
    print(f"Q10 (order-property elision), items={items}, bids={bids}")
    for row in rows:
        print(f"  {row['query']}:")
        print(f"    forced sorts : {row['forced_seconds']:.4f}s")
        print(f"    elided       : {row['elided_seconds']:.4f}s "
              f"({', '.join(row['elided_sorts'])})")
        print(f"    speedup: {row['speedup']:.1f}x")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q10_order": rows}})
        print(f"  JSON written to {argv[2]}")
    report = rows[0]
    assert report["speedup"] >= 5.0, \
        f"expected >=5x speedup, got {report['speedup']:.1f}x"
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
