"""E13 — parallel execution: multi-process scatter/gather over
shared-memory arenas.

Not a paper table: the paper's engine is single-threaded; this
benchmark measures what the parallel execution mode buys on the two
workload shapes it targets (see docs/parallelism.md):

- ``docs-shards`` — a sharded corpus queried through
  ``collection("shard-*.xml")``: inter-document sharding deals the
  member documents to worker processes and k-way-merges the fragments
  by ``(seq, pre)``;
- ``range-scan`` — one large document scanned via ``$d//itemtuple``:
  intra-document range partitioning slices the tag's pre-list into
  contiguous per-worker ranges.

Workers attach the frozen arenas from ``multiprocessing.shared_memory``
segments (zero copies), so the only per-query transfer is the result
rows.  Every measurement first asserts the parallel output is
byte-identical to the serial winner's.

Speedup is machine-dependent (it needs actual cores), so the committed
baseline gates only the machine-independent ``parallel_tasks`` counter;
``speedup`` rides along and is asserted ≥2× only when the host has at
least 4 CPUs.  Run directly at scale::

    PYTHONPATH=src python benchmarks/bench_q13_parallel.py \\
        [items-per-shard] [range-items] [out.json]
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.api import CompiledQuery, Database, compile_query
from repro.bench.harness import write_json
from repro.datagen import ITEMS_DTD, generate_items
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.cost import preferred_mode

SHARDS = 4
WORKERS = 4

Q13_QUERIES = {
    "docs-shards": '''
for $i1 in collection("shard-*.xml")//itemtuple
where $i1/reserveprice >= 490
return <pricey>{ $i1/itemno }</pricey>
''',
    "range-scan": '''
let $d1 := doc("items.xml")
for $i1 in $d1//itemtuple
where $i1/reserveprice >= 490
return <pricey>{ $i1/itemno }</pricey>
''',
}

SIZES = ((150, 600), (400, 1600))

_CACHE: dict[tuple[int, int],
             tuple[Database, dict[str, CompiledQuery]]] = {}


def compiled(per_shard: int, range_items: int, seed: int = 7
             ) -> tuple[Database, dict[str, CompiledQuery]]:
    key = (per_shard, range_items)
    if key not in _CACHE:
        db = Database()
        for shard in range(SHARDS):
            db.register_tree(f"shard-{shard}.xml",
                             generate_items(per_shard,
                                            seed=seed + shard),
                             dtd_text=ITEMS_DTD)
        db.register_tree("items.xml",
                         generate_items(range_items, seed=seed),
                         dtd_text=ITEMS_DTD)
        _CACHE[key] = (db, {name: compile_query(text, db)
                            for name, text in Q13_QUERIES.items()})
    return _CACHE[key]


@pytest.mark.parametrize("per_shard,range_items", SIZES)
@pytest.mark.parametrize("mode", ("pipelined", "parallel"))
@pytest.mark.parametrize("query", tuple(Q13_QUERIES))
def test_q13_by_size(benchmark, query, mode, per_shard, range_items):
    db, queries = compiled(per_shard, range_items)
    plan = queries[query].best().plan
    benchmark.group = (f"q13 {query}, per_shard={per_shard} "
                       f"range={range_items}")
    workers = WORKERS if mode == "parallel" else None
    benchmark(lambda: db.execute(plan, mode=mode,
                                 workers=workers).output)


def speedup_at(query: str, per_shard: int, range_items: int,
               repeat: int = 5, seed: int = 7) -> dict:
    """Measure serial (the cost model's serial winner) vs parallel for
    one query at one scale; returns the comparison record."""
    db, queries = compiled(per_shard, range_items, seed=seed)
    plan = queries[query].best().plan
    serial_mode = preferred_mode(plan, db.store)

    serial_result = db.execute(plan, mode=serial_mode)
    metrics = MetricsRegistry()
    parallel_result = db.execute(plan, mode="parallel",
                                 workers=WORKERS, metrics=metrics)
    assert parallel_result.output == serial_result.output, \
        "parallel mode must be byte-identical to serial execution"
    assert parallel_result.rows == serial_result.rows, \
        "parallel mode must produce identical rows"
    counters = metrics.snapshot()["counters"]
    tasks = counters.get("parallel.tasks", 0)
    assert tasks == WORKERS, \
        f"{query}: expected {WORKERS} scatter tasks, got {tasks}"
    merge_mode = next((key.rsplit(".", 1)[1] for key in counters
                       if key.startswith("parallel.merge.")), "none")

    serial_s = parallel_s = float("inf")
    for _ in range(max(1, repeat)):
        serial_s = min(serial_s,
                       db.execute(plan, mode=serial_mode).elapsed)
        parallel_s = min(parallel_s,
                         db.execute(plan, mode="parallel",
                                    workers=WORKERS).elapsed)
    return {
        "query": query,
        "items": SHARDS * per_shard if query == "docs-shards"
        else range_items,
        "rows": len(serial_result.rows),
        "workers": WORKERS,
        "parallel_tasks": tasks,
        "merge_mode": merge_mode,
        "serial_mode": serial_mode,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s
        else float("inf"),
    }


def main(argv: list[str]) -> int:
    per_shard = int(argv[0]) if argv else 1200
    # The range doc defaults to 16x a shard: intra-document slicing
    # pays a per-result-row transfer charge, so it needs a deeper scan
    # than the sharded corpus before the split pulls clear of serial.
    range_items = int(argv[1]) if len(argv) > 1 else 16 * per_shard
    records = [speedup_at(query, per_shard, range_items)
               for query in Q13_QUERIES]
    print(f"Q13 (parallel scatter/gather), shards={SHARDS}x{per_shard},"
          f" range-doc={range_items}, workers={WORKERS}")
    for record in records:
        print(f"  {record['query']:11s}: {record['serial_mode']:10s} "
              f"{record['serial_seconds']:.4f}s, parallel "
              f"{record['parallel_seconds']:.4f}s "
              f"-> {record['speedup']:.1f}x "
              f"[{record['rows']} rows, {record['parallel_tasks']} "
              f"tasks, merge={record['merge_mode']}]")
    if len(argv) > 2:
        write_json(argv[2], {"schema": "repro-bench/1",
                             "queries": {"q13_parallel": records}})
        print(f"  JSON written to {argv[2]}")
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        for record in records:
            assert record["speedup"] >= 2.0, \
                (f"{record['query']}: expected >=2x parallel speedup "
                 f"on a {cpus}-CPU host, got {record['speedup']:.1f}x")
    else:
        print(f"  note: host has {cpus} CPU(s) — speedup recorded but "
              f"not asserted (needs >=4)")
    from repro.engine.parallel import close_pool
    close_pool()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
