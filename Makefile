# Convenience targets; everything also runs as plain commands with
# PYTHONPATH=src (no packaging step, no dependencies beyond pytest).

PYTHON ?= python

.PHONY: test bench bench-update bench-check docs-check

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m repro.bench

# Re-run the standalone benchmarks at the CI sizes and rewrite the
# tracked BENCH_<query>.json perf-trajectory baselines at the repo
# root.  Run this (and commit the result) after an intentional perf
# change or a benchmark size bump; CI's trajectory gate fails on >20%
# regression against these files.
bench-update:
	PYTHONPATH=src $(PYTHON) benchmarks/trajectory.py run-update

# Run the same benchmarks and gate them against the committed
# baselines without updating anything (what CI does).
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q7_index.py 2000 /tmp/bench-q7.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q8_pipeline.py 20 1000 /tmp/bench-q8.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q9_storage.py 2000 10000 /tmp/bench-q9.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q10_order.py 600 3000 /tmp/bench-q10.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q11_vectorized.py 4000 20000 /tmp/bench-q11.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q12_serve.py 100 500 /tmp/bench-q12.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q13_parallel.py 1200 19200 /tmp/bench-q13.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_q14_updates.py 4000 /tmp/bench-q14.json
	PYTHONPATH=src $(PYTHON) benchmarks/trajectory.py check \
		/tmp/bench-q7.json /tmp/bench-q8.json /tmp/bench-q9.json /tmp/bench-q10.json \
		/tmp/bench-q11.json /tmp/bench-q12.json /tmp/bench-q13.json /tmp/bench-q14.json

# Fail when a module under src/repro/ lacks a module docstring or a
# docs/*.md intra-repo link points at a missing file/anchor.
docs-check:
	$(PYTHON) tools/docs_check.py
